#include "algo/algo_view.h"

#include <utility>

#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Counts degrees, prefix-sums them into offsets, and fills the neighbor
// array with dense indices. `adj` maps a NodeData pointer to its sorted
// adjacency vector; translation through the monotone id->index map keeps
// each span ascending, so no per-node re-sort is needed.
template <typename Graph, typename AdjFn>
void FillCsr(const Graph& g, const NodeIndex& ni, const AdjFn& adj,
             std::vector<int64_t>* offsets, std::vector<int64_t>* nbrs) {
  const int64_t n = ni.size();
  offsets->assign(n + 1, 0);
  std::vector<const std::vector<NodeId>*> lists(n);
  ParallelFor(0, n, [&](int64_t i) {
    lists[i] = &adj(g.GetNode(ni.IdOf(i)));
    (*offsets)[i] = static_cast<int64_t>(lists[i]->size());
  });
  // offsets holds degrees in [0, n) and 0 at n; the exclusive scan turns it
  // into the n+1 CSR offsets with the total at offsets[n].
  const int64_t total = ExclusivePrefixSum(offsets->data(), offsets->data(),
                                           n + 1);
  nbrs->resize(total);
  ParallelForDynamic(0, n, [&](int64_t i) {
    int64_t pos = (*offsets)[i];
    for (NodeId v : *lists[i]) (*nbrs)[pos++] = ni.IndexOf(v);
  });
}

template <typename Graph>
std::shared_ptr<const AlgoView> CachedOf(const Graph& g) {
  if (auto cached = g.FreshCachedView()) {
    RINGO_COUNTER_ADD("algo_view/hit", 1);
    return std::static_pointer_cast<const AlgoView>(std::move(cached));
  }
  if (g.HasCachedView()) RINGO_COUNTER_ADD("algo_view/invalidate", 1);
  std::shared_ptr<const AlgoView> view = AlgoView::Build(g);
  g.SetCachedView(view);
  return view;
}

}  // namespace

std::shared_ptr<const AlgoView> AlgoView::Of(const DirectedGraph& g) {
  return CachedOf(g);
}

std::shared_ptr<const AlgoView> AlgoView::Of(const UndirectedGraph& g) {
  return CachedOf(g);
}

std::shared_ptr<const AlgoView> AlgoView::Build(const DirectedGraph& g) {
  trace::Span span("AlgoView/build");
  RINGO_COUNTER_ADD("algo_view/build", 1);
  auto view = std::shared_ptr<AlgoView>(new AlgoView());
  view->directed_ = true;
  view->ni_ = NodeIndex::FromGraph(g);
  FillCsr(
      g, view->ni_,
      [](const DirectedGraph::NodeData* nd) -> const std::vector<NodeId>& {
        return nd->out;
      },
      &view->out_offsets_, &view->out_nbrs_);
  FillCsr(
      g, view->ni_,
      [](const DirectedGraph::NodeData* nd) -> const std::vector<NodeId>& {
        return nd->in;
      },
      &view->in_offsets_, &view->in_nbrs_);
  span.AddAttr("nodes", view->NumNodes());
  span.AddAttr("arcs", view->NumOutArcs());
  return view;
}

std::shared_ptr<const AlgoView> AlgoView::Build(const UndirectedGraph& g) {
  trace::Span span("AlgoView/build");
  RINGO_COUNTER_ADD("algo_view/build", 1);
  auto view = std::shared_ptr<AlgoView>(new AlgoView());
  view->directed_ = false;
  view->ni_ = NodeIndex::FromGraph(g);
  FillCsr(
      g, view->ni_,
      [](const UndirectedGraph::NodeData* nd) -> const std::vector<NodeId>& {
        return nd->nbrs;
      },
      &view->out_offsets_, &view->out_nbrs_);
  span.AddAttr("nodes", view->NumNodes());
  span.AddAttr("arcs", view->NumOutArcs());
  return view;
}

}  // namespace ringo
