// Connected-component algorithms: weakly connected components (union-find)
// and strongly connected components (iterative Tarjan — Table 6's "SCC"
// row), plus largest-component extraction.
#ifndef RINGO_ALGO_CONNECTIVITY_H_
#define RINGO_ALGO_CONNECTIVITY_H_

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

// A component labeling: (node id, component id), ascending by node id.
// Component ids are dense, 0-based, and numbered so that component 0
// contains the smallest node id, etc. (deterministic).
using ComponentLabels = NodeInts;

// Weakly connected components (edge direction ignored).
ComponentLabels WeaklyConnectedComponents(const DirectedGraph& g);
ComponentLabels ConnectedComponents(const UndirectedGraph& g);

// Strongly connected components (Tarjan, iterative — no recursion-depth
// limit on deep graphs).
ComponentLabels StronglyConnectedComponents(const DirectedGraph& g);

// Sizes of components given labels: sizes[c] = #nodes in component c.
std::vector<int64_t> ComponentSizes(const ComponentLabels& labels);

// Node ids of the largest component (ties broken by smaller component id).
std::vector<NodeId> LargestComponent(const ComponentLabels& labels);

// True if every node is weakly reachable from every other (empty graphs
// count as connected).
bool IsWeaklyConnected(const DirectedGraph& g);
bool IsConnected(const UndirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_CONNECTIVITY_H_
