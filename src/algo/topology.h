// DAG utilities: cycle detection and topological ordering.
#ifndef RINGO_ALGO_TOPOLOGY_H_
#define RINGO_ALGO_TOPOLOGY_H_

#include <vector>

#include "graph/directed_graph.h"
#include "util/result.h"

namespace ringo {

// True if the graph has no directed cycle (self-loops are cycles).
bool IsDag(const DirectedGraph& g);

// Topological order (Kahn's algorithm; ties broken by smallest node id, so
// the order is deterministic and lexicographically smallest). Fails with
// InvalidArgument if the graph has a cycle.
Result<std::vector<NodeId>> TopologicalSort(const DirectedGraph& g);

// Nodes of some directed cycle (empty if acyclic). The cycle is returned
// in traversal order, first node repeated implicitly.
std::vector<NodeId> FindCycle(const DirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_TOPOLOGY_H_
