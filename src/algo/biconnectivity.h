// Cut vertices (articulation points) and bridges — the robustness
// primitives of network analysis: which node/edge failures disconnect the
// graph. Iterative Tarjan low-link DFS, O(n + m).
#ifndef RINGO_ALGO_BICONNECTIVITY_H_
#define RINGO_ALGO_BICONNECTIVITY_H_

#include <vector>

#include "graph/undirected_graph.h"

namespace ringo {

struct Biconnectivity {
  // Nodes whose removal increases the number of connected components,
  // ascending by id.
  std::vector<NodeId> articulation_points;
  // Edges whose removal increases the number of connected components, as
  // (min, max) pairs in ascending order. Self-loops are never bridges.
  std::vector<Edge> bridges;
};

Biconnectivity FindCutPointsAndBridges(const UndirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_BICONNECTIVITY_H_
