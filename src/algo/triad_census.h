// Directed triad census: counts all C(n,3) node triples by their
// isomorphism class — the classic 16 MAN types (Holland & Leinhardt),
// computed with the subquadratic Batagelj–Mrvar algorithm (O(m·d_max)
// rather than O(n^3)).
//
// Type conventions used here (x↔y = mutual dyad, x→y = asymmetric arc):
//   003           empty
//   012           single arc
//   102           single mutual dyad
//   021D          diverging pair   a←b→c   (same tail)
//   021U          converging pair  a→b←c   (same head)
//   021C          chain            a→b→c
//   111D          a↔b ← c          (arc into the mutual dyad)
//   111U          a↔b → c          (arc out of the mutual dyad)
//   030T          transitive triangle a→b→c, a→c
//   030C          cyclic triangle     a→b→c→a
//   201           two mutual dyads
//   120D          a↔b plus c→a, c→b
//   120U          a↔b plus a→c, b→c
//   120C          a↔b plus chain through c (a→c→b or b→c→a)
//   210           mutual + mutual + asymmetric
//   300           complete (all mutual)
//
// Self-loops are ignored.
#ifndef RINGO_ALGO_TRIAD_CENSUS_H_
#define RINGO_ALGO_TRIAD_CENSUS_H_

#include <array>
#include <cstdint>

#include "graph/directed_graph.h"

namespace ringo {

enum class TriadType : int {
  k003 = 0, k012, k102, k021D, k021U, k021C, k111D, k111U,
  k030T, k030C, k201, k120D, k120U, k120C, k210, k300,
};

inline constexpr int kNumTriadTypes = 16;

const char* TriadTypeName(TriadType t);

// Classifies a 6-bit triad adjacency code. Bit layout over nodes (u, v, w):
// bit0 u→v, bit1 v→u, bit2 u→w, bit3 w→u, bit4 v→w, bit5 w→v.
TriadType ClassifyTriadCode(int code);

// Census over all node triples; result indexed by TriadType. Requires
// n <= 3,000,000 (C(n,3) must fit in int64).
std::array<int64_t, kNumTriadTypes> TriadCensus(const DirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_TRIAD_CENSUS_H_
