// Kill switch for the CSR-span algorithm kernels (DESIGN.md §10).
//
// Every parallel algorithm in src/algo/ has two code paths:
//   * the CSR path (default): kernels read dense neighbor spans from the
//     cached AlgoView snapshot — no hash probes on the per-edge hot path;
//   * the legacy path: the original hash-of-vectors implementation, kept
//     as the reference oracle for the `parity` test suite.
// The two paths are bit-identical by construction for discrete outputs and
// agree to float tolerance (in practice bit-identically: both iterate
// neighbors in ascending order and use the same blocked reductions). The
// toggle exists to prove it — the same discipline as radix::SetEnabled.
#ifndef RINGO_ALGO_CSR_SWITCH_H_
#define RINGO_ALGO_CSR_SWITCH_H_

namespace ringo {
namespace csr {

// True (default) = algorithms run on AlgoView CSR spans; false = legacy
// hash-adjacency oracles. Reads are relaxed atomics, safe from any thread;
// toggle only between algorithm calls.
bool Enabled();
void SetEnabled(bool on);

// RAII toggle for tests and ablations.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace csr
}  // namespace ringo

#endif  // RINGO_ALGO_CSR_SWITCH_H_
