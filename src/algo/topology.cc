#include "algo/topology.h"

#include <algorithm>
#include <queue>

#include "algo/node_index.h"

namespace ringo {

Result<std::vector<NodeId>> TopologicalSort(const DirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<int64_t> indeg(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    indeg[i] = static_cast<int64_t>(g.GetNode(ni.IdOf(i))->in.size());
  }
  // Min-heap on node id keeps the order deterministic.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>> ready;
  for (int64_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int64_t u = ready.top();
    ready.pop();
    order.push_back(ni.IdOf(u));
    for (NodeId vid : g.GetNode(ni.IdOf(u))->out) {
      const int64_t v = ni.IndexOf(vid);
      if (--indeg[v] == 0) ready.push(v);
    }
  }
  if (static_cast<int64_t>(order.size()) != n) {
    return Status::InvalidArgument("graph has a directed cycle");
  }
  return order;
}

bool IsDag(const DirectedGraph& g) { return TopologicalSort(g).ok(); }

std::vector<NodeId> FindCycle(const DirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  // Iterative DFS with colors; back edge closes a cycle.
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(n, kWhite);
  std::vector<int64_t> parent(n, -1);
  for (int64_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<int64_t, size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child == 0) color[u] = kGray;
      const auto& out = g.GetNode(ni.IdOf(u))->out;
      if (child < out.size()) {
        const int64_t v = ni.IndexOf(out[child++]);
        if (v == u) return {ni.IdOf(u)};  // Self-loop.
        if (color[v] == kGray) {
          // Walk parents from u back to v.
          std::vector<NodeId> cycle{ni.IdOf(v)};
          for (int64_t w = u; w != v; w = parent[w]) {
            cycle.push_back(ni.IdOf(w));
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[v] == kWhite) {
          parent[v] = u;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace ringo
