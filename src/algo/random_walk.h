// Random walks and walk-based scores. Deterministic for a given seed.
#ifndef RINGO_ALGO_RANDOM_WALK_H_
#define RINGO_ALGO_RANDOM_WALK_H_

#include <vector>

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "util/result.h"

namespace ringo {

// A single random walk of up to `length` steps following out-edges; stops
// early at a node with no out-neighbors. The returned sequence starts at
// `start`. Fails if `start` is missing.
Result<std::vector<NodeId>> RandomWalk(const DirectedGraph& g, NodeId start,
                                       int64_t length, uint64_t seed = 1);

// Monte-Carlo personalized PageRank: `walks` walks from `seed_node`, each
// restarting with probability (1 - damping) per step; score = visit
// frequency. Converges to PersonalizedPageRank as walks grows.
Result<NodeValues> RandomWalkScores(const DirectedGraph& g, NodeId seed_node,
                                    int64_t walks, double damping = 0.85,
                                    uint64_t seed = 1);

}  // namespace ringo

#endif  // RINGO_ALGO_RANDOM_WALK_H_
