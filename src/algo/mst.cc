#include "algo/mst.h"

#include <algorithm>
#include <numeric>

#include "algo/node_index.h"
#include "util/parallel.h"

namespace ringo {

MstResult MinimumSpanningForest(const UndirectedGraph& g,
                                const EdgeWeights& w) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  struct WEdge {
    double weight;
    NodeId u, v;
  };
  std::vector<WEdge> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (u == v) return;  // Self-loops never belong to a spanning tree.
    edges.push_back(WEdge{w.Get(u, v), std::min(u, v), std::max(u, v)});
  });
  ParallelSort(edges.begin(), edges.end(), [](const WEdge& a, const WEdge& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  // Union-find over dense indices.
  std::vector<int64_t> parent(ni.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  MstResult out;
  for (const WEdge& e : edges) {
    const int64_t ru = find(ni.IndexOf(e.u));
    const int64_t rv = find(ni.IndexOf(e.v));
    if (ru == rv) continue;
    parent[ru] = rv;
    out.edges.emplace_back(e.u, e.v);
    out.total_weight += e.weight;
  }
  return out;
}

}  // namespace ringo
