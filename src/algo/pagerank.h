// PageRank (Table 3's parallel benchmark and the §4.1 demo's ranking step).
//
// Both implementations are pull-based power iteration: each node gathers
// rank mass from its in-neighbors, so the parallel variant needs no atomics
// — exactly the "straightforward sequential algorithm with a few OpenMP
// statements" the paper describes. Dangling-node mass is redistributed
// uniformly each iteration, so ranks always sum to 1.
//
// The kernel reads in-neighbor spans from the cached AlgoView CSR snapshot
// by default; csr::SetEnabled(false) selects the hash-adjacency legacy
// oracle (same arithmetic, kept for the parity suite). Results are
// bit-identical across thread counts and between the two paths.
#ifndef RINGO_ALGO_PAGERANK_H_
#define RINGO_ALGO_PAGERANK_H_

#include <memory>
#include <vector>

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/edge_weights.h"
#include "util/result.h"

namespace ringo {

class AlgoView;

struct PageRankConfig {
  double damping = 0.85;
  int max_iters = 100;
  // Stop when the L1 change between iterations drops below tol. Set tol=0
  // to always run max_iters (the paper times exactly 10 iterations).
  double tol = 1e-10;
};

// Sequential PageRank; (id, score) ascending by id, scores sum to 1.
Result<NodeValues> PageRank(const DirectedGraph& g,
                            const PageRankConfig& config = {});

// OpenMP-parallel PageRank; identical results to PageRank (deterministic
// apart from floating-point reduction order).
Result<NodeValues> ParallelPageRank(const DirectedGraph& g,
                                    const PageRankConfig& config = {});

// Carry-over state for warm-started PageRank on a stream of delta batches
// (DESIGN.md §11). Holds the snapshot the scores were computed against plus
// the dense score vector in that snapshot's numbering.
struct PageRankWarmState {
  std::shared_ptr<const AlgoView> view;
  std::vector<double> scores;  // Dense, in view's numbering; sums to 1.
  int iterations = 0;          // Iterations the last call actually ran.
  bool warm = false;           // Last call was seeded from previous scores.
};

// Parallel PageRank that seeds power iteration from `state->scores` when
// the node set is unchanged since the previous call (delta batches only
// touch edges, so this is the common streaming case). Power iteration with
// damping < 1 has a unique fixed point, so warm and cold starts converge to
// the same scores within `config.tol` — the warm start just gets there in
// fewer iterations after a small batch. Falls back to a cold start
// (uniform init) on the first call or after the node set changed. Always
// runs on the AlgoView CSR snapshot. Updates *state in place.
Result<NodeValues> ParallelPageRankWarm(const DirectedGraph& g,
                                        PageRankWarmState* state,
                                        const PageRankConfig& config = {});

// PageRank over an already-pinned snapshot, returning the dense score
// vector in the view's numbering (uniform teleport; zip with
// view.node_index() for ids). This is the serving-engine entry point: a
// query pins one view and never touches the live graph, so it is safe
// under concurrent writers (DESIGN.md §12) and honors the calling thread's
// cancellation token.
Result<std::vector<double>> PageRankScoresOnView(
    const AlgoView& view, const PageRankConfig& config = {},
    bool parallel = true);

// Personalized PageRank: teleport jumps back to `seeds` (uniformly) instead
// of to all nodes. Fails if seeds is empty or contains unknown nodes.
Result<NodeValues> PersonalizedPageRank(const DirectedGraph& g,
                                        const std::vector<NodeId>& seeds,
                                        const PageRankConfig& config = {});

// Weighted PageRank: rank mass flows along each edge u→v in proportion to
// w(u, v) / Σ_x w(u, x) instead of 1/outdeg(u). Missing edges in `w`
// default to weight 1; weights must be non-negative and a node's outgoing
// total must be positive or the node is treated as dangling.
Result<NodeValues> WeightedPageRank(const DirectedGraph& g,
                                    const EdgeWeights& w,
                                    const PageRankConfig& config = {});

}  // namespace ringo

#endif  // RINGO_ALGO_PAGERANK_H_
