#include "algo/random_walk.h"

#include <algorithm>

#include "storage/flat_hash_map.h"
#include "util/rng.h"

namespace ringo {

Result<std::vector<NodeId>> RandomWalk(const DirectedGraph& g, NodeId start,
                                       int64_t length, uint64_t seed) {
  if (!g.HasNode(start)) {
    return Status::NotFound("walk start node " + std::to_string(start) +
                            " is not in the graph");
  }
  Rng rng(seed);
  std::vector<NodeId> walk{start};
  NodeId cur = start;
  for (int64_t i = 0; i < length; ++i) {
    const auto& out = g.GetNode(cur)->out;
    if (out.empty()) break;
    cur = out[rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1)];
    walk.push_back(cur);
  }
  return walk;
}

Result<NodeValues> RandomWalkScores(const DirectedGraph& g, NodeId seed_node,
                                    int64_t walks, double damping,
                                    uint64_t seed) {
  if (!g.HasNode(seed_node)) {
    return Status::NotFound("seed node " + std::to_string(seed_node) +
                            " is not in the graph");
  }
  if (!(damping >= 0.0 && damping < 1.0)) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  if (walks < 1) {
    return Status::InvalidArgument("need at least one walk");
  }
  Rng rng(seed);
  FlatHashMap<NodeId, int64_t> visits;
  int64_t total = 0;
  for (int64_t k = 0; k < walks; ++k) {
    NodeId cur = seed_node;
    while (true) {
      ++visits.GetOrInsert(cur);
      ++total;
      if (!rng.Bernoulli(damping)) break;  // Teleport back to the seed.
      const auto& out = g.GetNode(cur)->out;
      if (out.empty()) break;  // Dangling: restart.
      cur = out[rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1)];
    }
  }
  NodeValues scores;
  scores.reserve(visits.size());
  visits.ForEach([&](NodeId id, const int64_t& c) {
    scores.emplace_back(id, static_cast<double>(c) / static_cast<double>(total));
  });
  std::sort(scores.begin(), scores.end());
  return scores;
}

}  // namespace ringo
