#include "algo/triangles.h"

#include <algorithm>
#include <span>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Degree-ordered forward adjacency: node i keeps only neighbors j with
// (deg(j), j) > (deg(i), i), as ascending dense indices. Every triangle
// then has exactly one vertex from which both others are "forward".
// Self-loops are dropped (a self-loop cannot be part of a triangle); the
// ordering key counts them, which only affects which vertex owns a
// triangle, never the count.
struct ForwardAdjacency {
  NodeIndex ni;
  std::vector<std::vector<int64_t>> fwd;

  // Legacy oracle: hash probe per edge to translate neighbor ids.
  explicit ForwardAdjacency(const UndirectedGraph& g)
      : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    std::vector<int64_t> deg(n);
    std::vector<const UndirectedGraph::NodeData*> node_ptr(n);
    for (int64_t i = 0; i < n; ++i) {
      node_ptr[i] = g.GetNode(ni.IdOf(i));
      deg[i] = static_cast<int64_t>(node_ptr[i]->nbrs.size());
    }
    auto order_less = [&](int64_t a, int64_t b) {
      return deg[a] != deg[b] ? deg[a] < deg[b] : a < b;
    };
    fwd.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      for (NodeId vid : node_ptr[i]->nbrs) {
        const int64_t j = ni.IndexOf(vid);
        if (j != i && order_less(i, j)) fwd[i].push_back(j);
      }
      std::sort(fwd[i].begin(), fwd[i].end());
    });
  }

  // CSR path: neighbor spans are already ascending dense indices, so the
  // filtered copy needs no translation and no sort.
  explicit ForwardAdjacency(const AlgoView& view) : ni(view.node_index()) {
    const int64_t n = view.NumNodes();
    std::vector<int64_t> deg(n);
    ParallelFor(0, n, [&](int64_t i) { deg[i] = view.OutDegree(i); });
    auto order_less = [&](int64_t a, int64_t b) {
      return deg[a] != deg[b] ? deg[a] < deg[b] : a < b;
    };
    fwd.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      for (const int64_t j : view.Out(i)) {
        if (j != i && order_less(i, j)) fwd[i].push_back(j);
      }
    });
  }
};

int64_t SortedIntersectionSize(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b) {
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

int64_t CountWithForward(const ForwardAdjacency& fa, bool parallel) {
  const int64_t n = fa.ni.size();
  // Integer sums are order-insensitive, but the blocked form shares the
  // TSan-visible fork/join fencing of ParallelFor instead of an opaque
  // `omp reduction` combine.
  return DeterministicBlockSum(
      0, n,
      [&](int64_t i) {
        int64_t t = 0;
        for (int64_t j : fa.fwd[i]) {
          t += SortedIntersectionSize(fa.fwd[i], fa.fwd[j]);
        }
        return t;
      },
      parallel);
}

int64_t CountTriangles(const UndirectedGraph& g, bool parallel,
                       const char* span_name) {
  trace::Span span(span_name);
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));
  int64_t t;
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const ForwardAdjacency fa(*view);
    t = CountWithForward(fa, parallel);
  } else {
    const ForwardAdjacency fa(g);
    t = CountWithForward(fa, parallel);
  }
  span.AddAttr("triangles", t);
  return t;
}

// Neighbors of u excluding self-loops, as sorted NodeId vector (legacy).
std::vector<NodeId> CleanNeighbors(const UndirectedGraph::NodeData& nd,
                                   NodeId u) {
  std::vector<NodeId> out;
  out.reserve(nd.nbrs.size());
  for (NodeId v : nd.nbrs) {
    if (v != u) out.push_back(v);
  }
  return out;
}

// |(a \ {skip_a}) ∩ (b \ {skip_b})| over ascending spans — the CSR
// merge-intersection, skipping each endpoint's own self-loop entry inline
// instead of materializing cleaned copies.
int64_t IntersectSkip(std::span<const int64_t> a, int64_t skip_a,
                      std::span<const int64_t> b, int64_t skip_b) {
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == skip_a) {
      ++i;
    } else if (b[j] == skip_b) {
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// Per-node triangle participation over CSR spans.
std::vector<int64_t> CsrNodeTriangles(const AlgoView& view) {
  const int64_t n = view.NumNodes();
  std::vector<int64_t> tri(n, 0);
  ParallelForDynamic(0, n, [&](int64_t i) {
    int64_t twice = 0;
    // NbrSpan keeps i's run pinned (one decode on the compact layout) while
    // the inner Out(v) decodes into separate scratch buffers.
    const NbrSpan nbrs = view.Out(i);
    for (const int64_t v : nbrs) {
      if (v == i) continue;
      // |N(i) ∩ N(v)| counts each triangle through edge (i,v) once; summing
      // over v counts each of i's triangles twice.
      twice += IntersectSkip(nbrs, i, view.Out(v), v);
    }
    tri[i] = twice / 2;
  });
  return tri;
}

// Degree of dense node i excluding a self-loop (spans are ascending, so
// the self entry is found by binary search).
int64_t CleanDegree(const AlgoView& view, int64_t i) {
  const NbrSpan nbrs = view.Out(i);
  int64_t deg = static_cast<int64_t>(nbrs.size());
  if (std::binary_search(nbrs.begin(), nbrs.end(), i)) --deg;
  return deg;
}

}  // namespace

int64_t TriangleCount(const UndirectedGraph& g) {
  return CountTriangles(g, /*parallel=*/false, "Algo/TriangleCount");
}

int64_t ParallelTriangleCount(const UndirectedGraph& g) {
  return CountTriangles(g, /*parallel=*/true, "Algo/ParallelTriangleCount");
}

NodeInts NodeTriangles(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    return view->node_index().Zip(CsrNodeTriangles(*view));
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<int64_t> tri(n, 0);
  ParallelForDynamic(0, n, [&](int64_t i) {
    const NodeId u = ni.IdOf(i);
    const std::vector<NodeId> nu = CleanNeighbors(*g.GetNode(u), u);
    int64_t twice = 0;
    for (NodeId v : nu) {
      const std::vector<NodeId> nv = CleanNeighbors(*g.GetNode(v), v);
      size_t a = 0, b = 0;
      while (a < nu.size() && b < nv.size()) {
        if (nu[a] < nv[b]) {
          ++a;
        } else if (nu[a] > nv[b]) {
          ++b;
        } else {
          ++twice;
          ++a;
          ++b;
        }
      }
    }
    tri[i] = twice / 2;
  });
  return ni.Zip(tri);
}

NodeValues LocalClusteringCoefficients(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const std::vector<int64_t> tri = CsrNodeTriangles(*view);
    const int64_t n = view->NumNodes();
    std::vector<double> cc(n);
    ParallelFor(0, n, [&](int64_t i) {
      const int64_t deg = CleanDegree(*view, i);
      const double pairs = static_cast<double>(deg) * (deg - 1) / 2.0;
      cc[i] = pairs > 0 ? static_cast<double>(tri[i]) / pairs : 0.0;
    });
    return view->node_index().Zip(cc);
  }
  const NodeInts tri = NodeTriangles(g);
  NodeValues out(tri.size());
  ParallelFor(0, static_cast<int64_t>(tri.size()), [&](int64_t i) {
    const auto [id, t] = tri[i];
    // Degree excluding self-loops.
    const UndirectedGraph::NodeData* nd = g.GetNode(id);
    int64_t deg = 0;
    for (NodeId v : nd->nbrs) {
      if (v != id) ++deg;
    }
    const double pairs = static_cast<double>(deg) * (deg - 1) / 2.0;
    out[i] = {id, pairs > 0 ? static_cast<double>(t) / pairs : 0.0};
  });
  return out;
}

double AverageClusteringCoefficient(const UndirectedGraph& g) {
  const NodeValues cc = LocalClusteringCoefficients(g);
  if (cc.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [id, c] : cc) sum += c;
  return sum / static_cast<double>(cc.size());
}

double GlobalClusteringCoefficient(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const std::vector<int64_t> tri = CsrNodeTriangles(*view);
    const int64_t n = view->NumNodes();
    int64_t triangles3 = 0;  // 3 * #triangles = closed wedges.
    for (int64_t i = 0; i < n; ++i) triangles3 += tri[i];
    const int64_t wedges = DeterministicBlockSum(0, n, [&](int64_t i) {
      const int64_t deg = CleanDegree(*view, i);
      return deg * (deg - 1) / 2;
    });
    return wedges > 0 ? static_cast<double>(triangles3) /
                            static_cast<double>(wedges)
                      : 0.0;
  }
  const NodeInts tri = NodeTriangles(g);
  int64_t triangles3 = 0;
  for (const auto& [id, t] : tri) triangles3 += t;
  int64_t wedges = 0;
  g.ForEachNode([&](NodeId u, const UndirectedGraph::NodeData& nd) {
    int64_t deg = 0;
    for (NodeId v : nd.nbrs) {
      if (v != u) ++deg;
    }
    wedges += deg * (deg - 1) / 2;
  });
  return wedges > 0 ? static_cast<double>(triangles3) /
                          static_cast<double>(wedges)
                    : 0.0;
}

}  // namespace ringo
