#include "algo/triangles.h"

#include <algorithm>

#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Builds degree-ordered forward adjacency: node i keeps only neighbors j
// with (deg(j), j) > (deg(i), i), as dense indices, sorted. Every triangle
// then has exactly one vertex from which both others are "forward".
struct ForwardAdjacency {
  NodeIndex ni;
  std::vector<std::vector<int64_t>> fwd;

  explicit ForwardAdjacency(const UndirectedGraph& g)
      : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    std::vector<int64_t> deg(n);
    std::vector<const UndirectedGraph::NodeData*> node_ptr(n);
    for (int64_t i = 0; i < n; ++i) {
      node_ptr[i] = g.GetNode(ni.IdOf(i));
      deg[i] = static_cast<int64_t>(node_ptr[i]->nbrs.size());
    }
    auto order_less = [&](int64_t a, int64_t b) {
      return deg[a] != deg[b] ? deg[a] < deg[b] : a < b;
    };
    fwd.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      for (NodeId vid : node_ptr[i]->nbrs) {
        const int64_t j = ni.IndexOf(vid);
        if (j != i && order_less(i, j)) fwd[i].push_back(j);
      }
      std::sort(fwd[i].begin(), fwd[i].end());
    });
  }
};

int64_t SortedIntersectionSize(const std::vector<int64_t>& a,
                               const std::vector<int64_t>& b) {
  int64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

int64_t CountWithForward(const ForwardAdjacency& fa, bool parallel) {
  const int64_t n = fa.ni.size();
  // Integer sums are order-insensitive, but the blocked form shares the
  // TSan-visible fork/join fencing of ParallelFor instead of an opaque
  // `omp reduction` combine.
  return DeterministicBlockSum(
      0, n,
      [&](int64_t i) {
        int64_t t = 0;
        for (int64_t j : fa.fwd[i]) {
          t += SortedIntersectionSize(fa.fwd[i], fa.fwd[j]);
        }
        return t;
      },
      parallel);
}

// Neighbors of u excluding self-loops, as sorted NodeId vector view.
std::vector<NodeId> CleanNeighbors(const UndirectedGraph::NodeData& nd,
                                   NodeId u) {
  std::vector<NodeId> out;
  out.reserve(nd.nbrs.size());
  for (NodeId v : nd.nbrs) {
    if (v != u) out.push_back(v);
  }
  return out;
}

}  // namespace

int64_t TriangleCount(const UndirectedGraph& g) {
  trace::Span span("Algo/TriangleCount");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  const ForwardAdjacency fa(g);
  const int64_t t = CountWithForward(fa, /*parallel=*/false);
  span.AddAttr("triangles", t);
  return t;
}

int64_t ParallelTriangleCount(const UndirectedGraph& g) {
  trace::Span span("Algo/ParallelTriangleCount");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  const ForwardAdjacency fa(g);
  const int64_t t = CountWithForward(fa, /*parallel=*/true);
  span.AddAttr("triangles", t);
  return t;
}

NodeInts NodeTriangles(const UndirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<int64_t> tri(n, 0);
  ParallelForDynamic(0, n, [&](int64_t i) {
    const NodeId u = ni.IdOf(i);
    const std::vector<NodeId> nu = CleanNeighbors(*g.GetNode(u), u);
    int64_t twice = 0;
    for (NodeId v : nu) {
      const std::vector<NodeId> nv = CleanNeighbors(*g.GetNode(v), v);
      // |N(u) ∩ N(v)| counts each triangle through edge (u,v) once; summing
      // over v counts each of u's triangles twice.
      size_t a = 0, b = 0;
      while (a < nu.size() && b < nv.size()) {
        if (nu[a] < nv[b]) {
          ++a;
        } else if (nu[a] > nv[b]) {
          ++b;
        } else {
          ++twice;
          ++a;
          ++b;
        }
      }
    }
    tri[i] = twice / 2;
  });
  return ni.Zip(tri);
}

NodeValues LocalClusteringCoefficients(const UndirectedGraph& g) {
  const NodeInts tri = NodeTriangles(g);
  NodeValues out(tri.size());
  ParallelFor(0, static_cast<int64_t>(tri.size()), [&](int64_t i) {
    const auto [id, t] = tri[i];
    // Degree excluding self-loops.
    const UndirectedGraph::NodeData* nd = g.GetNode(id);
    int64_t deg = 0;
    for (NodeId v : nd->nbrs) {
      if (v != id) ++deg;
    }
    const double pairs = static_cast<double>(deg) * (deg - 1) / 2.0;
    out[i] = {id, pairs > 0 ? static_cast<double>(t) / pairs : 0.0};
  });
  return out;
}

double AverageClusteringCoefficient(const UndirectedGraph& g) {
  const NodeValues cc = LocalClusteringCoefficients(g);
  if (cc.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [id, c] : cc) sum += c;
  return sum / static_cast<double>(cc.size());
}

double GlobalClusteringCoefficient(const UndirectedGraph& g) {
  const NodeInts tri = NodeTriangles(g);
  int64_t triangles3 = 0;  // 3 * #triangles = closed wedges.
  for (const auto& [id, t] : tri) triangles3 += t;
  int64_t wedges = 0;
  g.ForEachNode([&](NodeId u, const UndirectedGraph::NodeData& nd) {
    int64_t deg = 0;
    for (NodeId v : nd.nbrs) {
      if (v != u) ++deg;
    }
    wedges += deg * (deg - 1) / 2;
  });
  return wedges > 0 ? static_cast<double>(triangles3) /
                          static_cast<double>(wedges)
                    : 0.0;
}

}  // namespace ringo
