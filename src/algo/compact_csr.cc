#include "algo/compact_csr.h"

#include <bit>

#include "util/parallel.h"

namespace ringo {
namespace compactcsr {

namespace {

inline int VarintLen(uint64_t v) {
  // ceil(bit_width/7); bit_width(0) == 0, but zero still takes one byte.
  return (std::bit_width(v | 1) + 6) / 7;
}

inline uint8_t* EncodeVarint(uint64_t v, uint8_t* dst) {
  while (v >= 0x80) {
    *dst++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *dst++ = static_cast<uint8_t>(v);
  return dst;
}

// Encoded byte size of one run (first absolute, then gaps).
int64_t RunBytes(const int64_t* nbrs, int64_t deg) {
  if (deg == 0) return 0;
  int64_t sz = VarintLen(static_cast<uint64_t>(nbrs[0]));
  for (int64_t k = 1; k < deg; ++k) {
    sz += VarintLen(static_cast<uint64_t>(nbrs[k] - nbrs[k - 1]));
  }
  return sz;
}

}  // namespace

CompressedDir Compress(const std::vector<int64_t>& offsets,
                       const std::vector<int64_t>& nbrs) {
  const int64_t n = static_cast<int64_t>(offsets.size()) - 1;
  CompressedDir d;
  std::vector<int64_t> sizes(n + 1, 0);
  ParallelFor(0, n, [&](int64_t i) {
    sizes[i] = RunBytes(nbrs.data() + offsets[i], offsets[i + 1] - offsets[i]);
  });
  const int64_t total =
      ExclusivePrefixSum(sizes.data(), sizes.data(), n + 1);
  d.byte_offsets.resize(n + 1);
  for (int64_t i = 0; i <= n; ++i) {
    d.byte_offsets[i] = static_cast<uint64_t>(sizes[i]);
  }
  d.bytes.resize(total);
  ParallelForDynamic(0, n, [&](int64_t i) {
    const int64_t deg = offsets[i + 1] - offsets[i];
    if (deg == 0) return;
    const int64_t* run = nbrs.data() + offsets[i];
    uint8_t* dst = d.bytes.data() + d.byte_offsets[i];
    dst = EncodeVarint(static_cast<uint64_t>(run[0]), dst);
    for (int64_t k = 1; k < deg; ++k) {
      dst = EncodeVarint(static_cast<uint64_t>(run[k] - run[k - 1]), dst);
    }
  });
  return d;
}

void DecodeRun(const uint8_t* src, int64_t count, int64_t* dst) {
  DecodeRunForEach(src, count, [&dst](int64_t v) { *dst++ = v; });
}

namespace {

// Per-thread free list of decode buffers. Bounded so a burst of deep
// decodes cannot pin memory forever; overflow buffers are simply freed.
struct Pool {
  std::vector<DecodeBuf*> free;
  ~Pool() {
    for (DecodeBuf* b : free) delete b;
  }
};

constexpr size_t kMaxPooled = 64;
constexpr size_t kMinCap = 64;

Pool& ThreadPool() {
  static thread_local Pool pool;
  return pool;
}

}  // namespace

void ReleaseBuf(DecodeBuf* b) {
  Pool& p = ThreadPool();
  if (p.free.size() < kMaxPooled) {
    p.free.push_back(b);
  } else {
    delete b;
  }
}

BufRef AcquireBuf(size_t n) {
  Pool& p = ThreadPool();
  DecodeBuf* b = nullptr;
  if (!p.free.empty()) {
    b = p.free.back();
    p.free.pop_back();
  } else {
    b = new DecodeBuf();
  }
  if (b->cap < n) {
    size_t cap = b->cap < kMinCap ? kMinCap : b->cap;
    while (cap < n) cap *= 2;
    b->data = std::make_unique<int64_t[]>(cap);
    b->cap = cap;
  }
  b->refs.store(1, std::memory_order_relaxed);
  return BufRef(b);
}

}  // namespace compactcsr
}  // namespace ringo
