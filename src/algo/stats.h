// Whole-graph statistics for interactive exploration — the numbers a data
// scientist asks for first (degree distributions, reciprocity,
// assortativity, density), bundled into one summary the way SNAP's
// PrintInfo does.
#ifndef RINGO_ALGO_STATS_H_
#define RINGO_ALGO_STATS_H_

#include <string>
#include <vector>

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

// (degree, #nodes with that degree), ascending by degree.
using DegreeHistogram = std::vector<std::pair<int64_t, int64_t>>;

DegreeHistogram OutDegreeHistogram(const DirectedGraph& g);
DegreeHistogram InDegreeHistogram(const DirectedGraph& g);
DegreeHistogram DegreeHistogram_(const UndirectedGraph& g);

// Fraction of directed edges (u,v), u != v, whose reverse edge exists.
// 1.0 on a symmetric graph, 0.0 when no edge is reciprocated.
double Reciprocity(const DirectedGraph& g);

// Pearson correlation of endpoint degrees over all edges (degree
// assortativity, Newman 2002). Negative on hub-and-spoke graphs
// (star → -1), positive when high-degree nodes attach to each other.
// Returns 0 for degenerate graphs (no edges / constant degree).
double DegreeAssortativity(const UndirectedGraph& g);

// Edge density: |E| / (n * (n-1)) for directed, 2|E| / (n * (n-1)) for
// undirected; self-loops excluded from the numerator.
double Density(const DirectedGraph& g);
double Density(const UndirectedGraph& g);

int64_t CountSelfLoops(const DirectedGraph& g);
int64_t CountSelfLoops(const UndirectedGraph& g);

// One-stop structural summary.
struct GraphSummary {
  int64_t nodes = 0;
  int64_t edges = 0;
  int64_t self_loops = 0;
  int64_t zero_deg_nodes = 0;
  int64_t max_out_degree = 0;
  int64_t max_in_degree = 0;
  double avg_degree = 0;          // Out-degree average.
  double density = 0;
  double reciprocity = 0;
  int64_t wcc_count = 0;
  int64_t max_wcc_size = 0;
  int64_t scc_count = 0;
  int64_t max_scc_size = 0;
};

GraphSummary Summarize(const DirectedGraph& g);

// Human-readable multi-line rendering of a summary.
std::string SummaryToString(const GraphSummary& s);

}  // namespace ringo

#endif  // RINGO_ALGO_STATS_H_
