// NodeIndex: dense renumbering of a graph's node ids, the internal working
// representation of most algorithms (arrays indexed 0..n-1 instead of hash
// lookups in inner loops). Ids are assigned in ascending id order so all
// derived results are deterministic.
#ifndef RINGO_ALGO_NODE_INDEX_H_
#define RINGO_ALGO_NODE_INDEX_H_

#include <algorithm>
#include <vector>

#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"
#include "util/parallel.h"

namespace ringo {

class NodeIndex {
 public:
  // Builds from any graph exposing NodeIds(). Sorted by id.
  template <typename Graph>
  static NodeIndex FromGraph(const Graph& g) {
    NodeIndex ni;
    ni.ids_ = g.NodeIds();
    ParallelSort(ni.ids_.begin(), ni.ids_.end());
    ni.index_.Reserve(static_cast<int64_t>(ni.ids_.size()));
    for (int64_t i = 0; i < static_cast<int64_t>(ni.ids_.size()); ++i) {
      ni.index_.Insert(ni.ids_[i], i);
    }
    return ni;
  }

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  NodeId IdOf(int64_t index) const { return ids_[index]; }
  const std::vector<NodeId>& ids() const { return ids_; }

  // Dense index of `id`; -1 if the node is not in the graph.
  int64_t IndexOf(NodeId id) const {
    const int64_t* i = index_.Find(id);
    return i == nullptr ? -1 : *i;
  }

  // Pairs a dense value array back up with node ids (ascending id order).
  template <typename T>
  std::vector<std::pair<NodeId, T>> Zip(const std::vector<T>& values) const {
    std::vector<std::pair<NodeId, T>> out(ids_.size());
    ParallelFor(0, size(), [&](int64_t i) {
      out[i] = {ids_[i], values[i]};
    });
    return out;
  }

 private:
  std::vector<NodeId> ids_;
  FlatHashMap<NodeId, int64_t> index_;
};

}  // namespace ringo

#endif  // RINGO_ALGO_NODE_INDEX_H_
