// NodeIndex: dense renumbering of a graph's node ids, the internal working
// representation of most algorithms (arrays indexed 0..n-1 instead of hash
// lookups in inner loops). Ids are assigned in ascending id order so all
// derived results are deterministic.
#ifndef RINGO_ALGO_NODE_INDEX_H_
#define RINGO_ALGO_NODE_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"
#include "util/parallel.h"

namespace ringo {

class NodeIndex {
 public:
  NodeIndex() = default;

  // Builds from any graph exposing NodeIds(). Sorted by id.
  template <typename Graph>
  static NodeIndex FromGraph(const Graph& g) {
    return FromIds(g.NodeIds());
  }

  // Builds from a set of distinct node ids (any order; radix-sorted here).
  // When the id universe is dense — span at most ~4x the node count, the
  // common case for generated and renumbered graphs — the reverse lookup is
  // a flat direct-address array filled in parallel (disjoint slots). Sparse
  // universes fall back to a pre-sized hash map, whose inserts must stay
  // sequential but never rehash.
  static NodeIndex FromIds(std::vector<NodeId> ids);

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }
  NodeId IdOf(int64_t index) const { return ids_[index]; }
  const std::vector<NodeId>& ids() const { return ids_; }

  // Dense index of `id`; -1 if the node is not in the graph. Side-effect
  // free, so concurrent lookups from parallel loops are safe.
  int64_t IndexOf(NodeId id) const {
    if (dense_lookup_) {
      // Unsigned wrap also rejects ids below base_.
      const uint64_t off =
          static_cast<uint64_t>(id) - static_cast<uint64_t>(base_);
      if (off >= dense_.size()) return -1;
      return dense_[off];  // -1 when the slot is a hole.
    }
    const int64_t* i = index_.Find(id);
    return i == nullptr ? -1 : *i;
  }

  // Bytes held by the id array and the reverse-lookup structure (feeds the
  // snapshot memory gauges).
  int64_t MemoryUsageBytes() const {
    return static_cast<int64_t>(ids_.capacity() * sizeof(NodeId) +
                                dense_.capacity() * sizeof(int64_t)) +
           index_.MemoryUsageBytes();
  }

  // Pairs a dense value array back up with node ids (ascending id order).
  template <typename T>
  std::vector<std::pair<NodeId, T>> Zip(const std::vector<T>& values) const {
    std::vector<std::pair<NodeId, T>> out(ids_.size());
    ParallelFor(0, size(), [&](int64_t i) {
      out[i] = {ids_[i], values[i]};
    });
    return out;
  }

 private:
  std::vector<NodeId> ids_;
  bool dense_lookup_ = false;
  NodeId base_ = 0;                // ids_.front() when dense_lookup_.
  std::vector<int64_t> dense_;     // Direct-address table; -1 = hole.
  FlatHashMap<NodeId, int64_t> index_;  // Sparse fallback.
};

}  // namespace ringo

#endif  // RINGO_ALGO_NODE_INDEX_H_
