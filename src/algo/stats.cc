#include "algo/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "algo/connectivity.h"
#include "storage/flat_hash_map.h"

namespace ringo {

namespace {

DegreeHistogram HistogramOf(const std::vector<int64_t>& degrees) {
  FlatHashMap<int64_t, int64_t> counts;
  for (int64_t d : degrees) ++counts.GetOrInsert(d);
  DegreeHistogram hist;
  hist.reserve(counts.size());
  counts.ForEach([&](const int64_t& d, const int64_t& c) {
    hist.emplace_back(d, c);
  });
  std::sort(hist.begin(), hist.end());
  return hist;
}

}  // namespace

DegreeHistogram OutDegreeHistogram(const DirectedGraph& g) {
  std::vector<int64_t> deg;
  deg.reserve(g.NumNodes());
  g.ForEachNode([&](NodeId, const DirectedGraph::NodeData& nd) {
    deg.push_back(static_cast<int64_t>(nd.out.size()));
  });
  return HistogramOf(deg);
}

DegreeHistogram InDegreeHistogram(const DirectedGraph& g) {
  std::vector<int64_t> deg;
  deg.reserve(g.NumNodes());
  g.ForEachNode([&](NodeId, const DirectedGraph::NodeData& nd) {
    deg.push_back(static_cast<int64_t>(nd.in.size()));
  });
  return HistogramOf(deg);
}

DegreeHistogram DegreeHistogram_(const UndirectedGraph& g) {
  std::vector<int64_t> deg;
  deg.reserve(g.NumNodes());
  g.ForEachNode([&](NodeId, const UndirectedGraph::NodeData& nd) {
    deg.push_back(static_cast<int64_t>(nd.nbrs.size()));
  });
  return HistogramOf(deg);
}

double Reciprocity(const DirectedGraph& g) {
  int64_t non_loop = 0, reciprocated = 0;
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (u == v) return;
    ++non_loop;
    if (g.HasEdge(v, u)) ++reciprocated;
  });
  return non_loop > 0
             ? static_cast<double>(reciprocated) / static_cast<double>(non_loop)
             : 0.0;
}

double DegreeAssortativity(const UndirectedGraph& g) {
  // Pearson correlation over edge endpoint (remaining) degrees; each
  // undirected edge contributes both orientations, the standard convention.
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  int64_t m2 = 0;
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (u == v) return;
    const double du = static_cast<double>(g.Degree(u));
    const double dv = static_cast<double>(g.Degree(v));
    // Both orientations.
    sum_x += du + dv;
    sum_y += dv + du;
    sum_xy += 2 * du * dv;
    sum_x2 += du * du + dv * dv;
    sum_y2 += dv * dv + du * du;
    m2 += 2;
  });
  if (m2 == 0) return 0.0;
  const double n = static_cast<double>(m2);
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
  const double denom = std::sqrt(var_x * var_y);
  return denom > 1e-15 ? cov / denom : 0.0;
}

double Density(const DirectedGraph& g) {
  const double n = static_cast<double>(g.NumNodes());
  if (n < 2) return 0.0;
  return static_cast<double>(g.NumEdges() - CountSelfLoops(g)) / (n * (n - 1));
}

double Density(const UndirectedGraph& g) {
  const double n = static_cast<double>(g.NumNodes());
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(g.NumEdges() - CountSelfLoops(g)) /
         (n * (n - 1));
}

int64_t CountSelfLoops(const DirectedGraph& g) {
  int64_t loops = 0;
  g.ForEachNode([&](NodeId u, const DirectedGraph::NodeData& nd) {
    loops += std::binary_search(nd.out.begin(), nd.out.end(), u) ? 1 : 0;
  });
  return loops;
}

int64_t CountSelfLoops(const UndirectedGraph& g) {
  int64_t loops = 0;
  g.ForEachNode([&](NodeId u, const UndirectedGraph::NodeData& nd) {
    loops += std::binary_search(nd.nbrs.begin(), nd.nbrs.end(), u) ? 1 : 0;
  });
  return loops;
}

GraphSummary Summarize(const DirectedGraph& g) {
  GraphSummary s;
  s.nodes = g.NumNodes();
  s.edges = g.NumEdges();
  s.self_loops = CountSelfLoops(g);
  g.ForEachNode([&](NodeId, const DirectedGraph::NodeData& nd) {
    const int64_t out = static_cast<int64_t>(nd.out.size());
    const int64_t in = static_cast<int64_t>(nd.in.size());
    s.max_out_degree = std::max(s.max_out_degree, out);
    s.max_in_degree = std::max(s.max_in_degree, in);
    if (out + in == 0) ++s.zero_deg_nodes;
  });
  s.avg_degree = s.nodes > 0
                     ? static_cast<double>(s.edges) / static_cast<double>(s.nodes)
                     : 0.0;
  s.density = Density(g);
  s.reciprocity = Reciprocity(g);
  if (s.nodes > 0) {
    const auto wcc_sizes = ComponentSizes(WeaklyConnectedComponents(g));
    s.wcc_count = static_cast<int64_t>(wcc_sizes.size());
    s.max_wcc_size = *std::max_element(wcc_sizes.begin(), wcc_sizes.end());
    const auto scc_sizes = ComponentSizes(StronglyConnectedComponents(g));
    s.scc_count = static_cast<int64_t>(scc_sizes.size());
    s.max_scc_size = *std::max_element(scc_sizes.begin(), scc_sizes.end());
  }
  return s;
}

std::string SummaryToString(const GraphSummary& s) {
  std::ostringstream os;
  os << "nodes:            " << s.nodes << "\n"
     << "edges:            " << s.edges << "\n"
     << "self loops:       " << s.self_loops << "\n"
     << "isolated nodes:   " << s.zero_deg_nodes << "\n"
     << "avg out-degree:   " << s.avg_degree << "\n"
     << "max out-degree:   " << s.max_out_degree << "\n"
     << "max in-degree:    " << s.max_in_degree << "\n"
     << "density:          " << s.density << "\n"
     << "reciprocity:      " << s.reciprocity << "\n"
     << "WCCs:             " << s.wcc_count << " (largest " << s.max_wcc_size
     << ")\n"
     << "SCCs:             " << s.scc_count << " (largest " << s.max_scc_size
     << ")\n";
  return os.str();
}

}  // namespace ringo
