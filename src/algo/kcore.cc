#include "algo/kcore.h"

#include <algorithm>
#include <atomic>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Legacy oracle: sequential Batagelj–Zaveršnik bucket peeling over a dense
// adjacency copied out of the hash table. Kept behind csr::SetEnabled(false)
// as the reference for the parity suite.
std::vector<int64_t> LegacyCoreNumbers(const UndirectedGraph& g,
                                       const NodeIndex& ni) {
  const int64_t n = ni.size();
  std::vector<std::vector<int64_t>> adj(n);
  std::vector<int64_t> deg(n);
  int64_t max_deg = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto& nbrs = g.GetNode(ni.IdOf(i))->nbrs;
    adj[i].reserve(nbrs.size());
    for (NodeId v : nbrs) adj[i].push_back(ni.IndexOf(v));
    deg[i] = static_cast<int64_t>(adj[i].size());
    max_deg = std::max(max_deg, deg[i]);
  }

  // Bucket sort nodes by degree.
  std::vector<int64_t> bucket_start(max_deg + 2, 0);
  for (int64_t i = 0; i < n; ++i) ++bucket_start[deg[i] + 1];
  for (int64_t d = 0; d <= max_deg; ++d) bucket_start[d + 1] += bucket_start[d];
  std::vector<int64_t> order(n), pos(n);
  {
    std::vector<int64_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (int64_t i = 0; i < n; ++i) {
      pos[i] = cursor[deg[i]]++;
      order[pos[i]] = i;
    }
  }

  std::vector<int64_t> core(deg);
  for (int64_t idx = 0; idx < n; ++idx) {
    const int64_t u = order[idx];
    core[u] = deg[u];
    for (int64_t v : adj[u]) {
      if (deg[v] > deg[u]) {
        // Move v one bucket down: swap it with the first node of its
        // current bucket, then shrink the bucket boundary.
        const int64_t dv = deg[v];
        const int64_t pv = pos[v];
        const int64_t pw = bucket_start[dv];
        const int64_t w = order[pw];
        if (v != w) {
          std::swap(order[pv], order[pw]);
          pos[v] = pw;
          pos[w] = pv;
        }
        ++bucket_start[dv];
        --deg[v];
      }
    }
  }
  return core;
}

// CSR path: level-synchronous parallel peeling (ParK-style). For each k we
// claim every live node whose residual degree dropped to <= k (CAS on the
// claim flag keeps the claim unique), assign it core k, and decrement its
// neighbors' residual degrees with fetch_sub. Core numbers are a property
// of the graph, so the output is identical at every thread count even
// though frontier order is not. A self-loop contributes 1 to the degree and
// is never decremented — the same convention as the legacy oracle.
std::vector<int64_t> CsrCoreNumbers(const AlgoView& view) {
  const int64_t n = view.NumNodes();
  std::vector<std::atomic<int64_t>> deg(n);
  std::vector<std::atomic<bool>> claimed(n);
  ParallelFor(0, n, [&](int64_t i) {
    deg[i].store(view.OutDegree(i), std::memory_order_relaxed);
    claimed[i].store(false, std::memory_order_relaxed);
  });
  auto try_claim = [&](int64_t v) {
    bool expected = false;
    return claimed[v].compare_exchange_strong(expected, true,
                                              std::memory_order_relaxed);
  };

  std::vector<int64_t> core(n, 0);
  // Frontier storage: parallel producers append through an atomic tail.
  std::vector<int64_t> frontier(n), next(n);
  // Parallel regions are worth spawning only above these sizes; below
  // them the calling thread runs the same claim/decrement protocol
  // (same cutoff idea as the BFS engine's tiny levels), so the result
  // is unaffected. The seed scan repeats once per core level, which
  // multiplies its spawn overhead on small graphs.
  constexpr int64_t kSeqScanCutoff = 1 << 15;
  constexpr int64_t kSeqFrontierCutoff = 1 << 12;
  int64_t frontier_size = 0;
  int64_t removed = 0;
  int64_t k = 0;
  while (removed < n) {
    // Seed the level: every live node whose residual degree is already <= k.
    std::atomic<int64_t> tail{0};
    const auto seed = [&](int64_t i) {
      if (deg[i].load(std::memory_order_relaxed) <= k &&
          !claimed[i].load(std::memory_order_relaxed) && try_claim(i)) {
        frontier[tail.fetch_add(1, std::memory_order_relaxed)] = i;
      }
    };
    if (n < kSeqScanCutoff) {
      for (int64_t i = 0; i < n; ++i) seed(i);
    } else {
      ParallelFor(0, n, seed);
    }
    frontier_size = tail.load(std::memory_order_relaxed);

    // Drain the level: peeling a node can drag neighbors down into it.
    // Long peel chains produce many tiny sub-rounds, so small frontiers
    // run on the calling thread.
    while (frontier_size > 0) {
      removed += frontier_size;
      std::atomic<int64_t> next_tail{0};
      const auto peel = [&](int64_t f) {
        const int64_t u = frontier[f];
        core[u] = k;
        for (const int64_t v : view.Out(u)) {
          if (claimed[v].load(std::memory_order_relaxed)) continue;
          const int64_t now =
              deg[v].fetch_sub(1, std::memory_order_relaxed) - 1;
          if (now <= k && try_claim(v)) {
            next[next_tail.fetch_add(1, std::memory_order_relaxed)] = v;
          }
        }
      };
      if (frontier_size < kSeqFrontierCutoff) {
        for (int64_t f = 0; f < frontier_size; ++f) peel(f);
      } else {
        ParallelForDynamic(0, frontier_size, peel);
      }
      frontier.swap(next);
      frontier_size = next_tail.load(std::memory_order_relaxed);
    }
    ++k;
  }
  return core;
}

}  // namespace

NodeInts CoreNumbers(const UndirectedGraph& g) {
  const int64_t n = g.NumNodes();
  if (n == 0) return {};
  trace::Span span("Algo/CoreNumbers");
  span.AddAttr("nodes", n);
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    return view->node_index().Zip(CsrCoreNumbers(*view));
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  return ni.Zip(LegacyCoreNumbers(g, ni));
}

UndirectedGraph KCoreSubgraph(const UndirectedGraph& g, int64_t k) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const std::vector<int64_t> core = CsrCoreNumbers(*view);
    const int64_t n = view->NumNodes();
    UndirectedGraph out;
    for (int64_t i = 0; i < n; ++i) {
      if (core[i] >= k) out.AddNode(view->IdOf(i));
    }
    // Undirected spans list each edge in both endpoints' rows and a
    // self-loop once, so emitting j >= i yields each kept edge exactly once.
    for (int64_t i = 0; i < n; ++i) {
      if (core[i] < k) continue;
      for (const int64_t j : view->Out(i)) {
        if (j >= i && core[j] >= k) out.AddEdge(view->IdOf(i), view->IdOf(j));
      }
    }
    return out;
  }
  const NodeInts cores = CoreNumbers(g);
  UndirectedGraph out;
  FlatHashSet<NodeId> keep;
  keep.Reserve(static_cast<int64_t>(cores.size()));
  for (const auto& [id, c] : cores) {
    if (c >= k) {
      keep.Insert(id);
      out.AddNode(id);
    }
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (keep.Contains(u) && keep.Contains(v)) out.AddEdge(u, v);
  });
  return out;
}

int64_t Degeneracy(const UndirectedGraph& g) {
  int64_t best = 0;
  for (const auto& [id, c] : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

}  // namespace ringo
