#include "algo/kcore.h"

#include <algorithm>

#include "algo/node_index.h"

namespace ringo {

NodeInts CoreNumbers(const UndirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  if (n == 0) return {};

  // Dense adjacency + degrees (self-loop counts once).
  std::vector<std::vector<int64_t>> adj(n);
  std::vector<int64_t> deg(n);
  int64_t max_deg = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto& nbrs = g.GetNode(ni.IdOf(i))->nbrs;
    adj[i].reserve(nbrs.size());
    for (NodeId v : nbrs) adj[i].push_back(ni.IndexOf(v));
    deg[i] = static_cast<int64_t>(adj[i].size());
    max_deg = std::max(max_deg, deg[i]);
  }

  // Bucket sort nodes by degree (Batagelj–Zaveršnik).
  std::vector<int64_t> bucket_start(max_deg + 2, 0);
  for (int64_t i = 0; i < n; ++i) ++bucket_start[deg[i] + 1];
  for (int64_t d = 0; d <= max_deg; ++d) bucket_start[d + 1] += bucket_start[d];
  std::vector<int64_t> order(n), pos(n);
  {
    std::vector<int64_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (int64_t i = 0; i < n; ++i) {
      pos[i] = cursor[deg[i]]++;
      order[pos[i]] = i;
    }
  }

  std::vector<int64_t> core(deg);
  for (int64_t idx = 0; idx < n; ++idx) {
    const int64_t u = order[idx];
    core[u] = deg[u];
    for (int64_t v : adj[u]) {
      if (deg[v] > deg[u]) {
        // Move v one bucket down: swap it with the first node of its
        // current bucket, then shrink the bucket boundary.
        const int64_t dv = deg[v];
        const int64_t pv = pos[v];
        const int64_t pw = bucket_start[dv];
        const int64_t w = order[pw];
        if (v != w) {
          std::swap(order[pv], order[pw]);
          pos[v] = pw;
          pos[w] = pv;
        }
        ++bucket_start[dv];
        --deg[v];
      }
    }
  }
  return ni.Zip(core);
}

UndirectedGraph KCoreSubgraph(const UndirectedGraph& g, int64_t k) {
  const NodeInts cores = CoreNumbers(g);
  UndirectedGraph out;
  FlatHashSet<NodeId> keep;
  keep.Reserve(static_cast<int64_t>(cores.size()));
  for (const auto& [id, c] : cores) {
    if (c >= k) {
      keep.Insert(id);
      out.AddNode(id);
    }
  }
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (keep.Contains(u) && keep.Contains(v)) out.AddEdge(u, v);
  });
  return out;
}

int64_t Degeneracy(const UndirectedGraph& g) {
  int64_t best = 0;
  for (const auto& [id, c] : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

}  // namespace ringo
