#include "algo/hits.h"

#include <cmath>
#include <span>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/cancel.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Shared iteration: auth = Aᵀ·hub, hub = A·auth, L2-normalized each round.
// `in_of(i)` / `out_of(i)` yield ascending dense-index spans; the legacy
// and CSR paths feed identical spans (both adjacency orders are ascending),
// so the two paths are arithmetically identical. The norms and the L1
// convergence delta use the blocked deterministic sum so results are
// bit-identical at every thread count.
template <typename InSpanFn, typename OutSpanFn>
HitsScores IterateHits(int64_t n, const NodeIndex& ni, InSpanFn&& in_of,
                       OutSpanFn&& out_of, const HitsConfig& config) {
  std::vector<double> hub(n, 1.0), auth(n, 1.0);
  std::vector<double> hub_next(n), auth_next(n);
  auto normalize = [n](std::vector<double>& v) {
    double norm = DeterministicBlockSum(
        0, n, [&](int64_t i) { return v[i] * v[i]; });
    norm = std::sqrt(norm);
    if (norm > 0) {
      ParallelFor(0, n, [&](int64_t i) { v[i] /= norm; });
    }
  };
  normalize(hub);
  normalize(auth);

  for (int iter = 0; iter < config.max_iters; ++iter) {
    if (cancel::Checkpoint()) break;  // Deadline-bounded serving.
    // auth(v) = sum of hub(u) over in-neighbors u.
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = 0.0;
      for (const int64_t u : in_of(i)) acc += hub[u];
      auth_next[i] = acc;
    });
    // hub(u) = sum of auth(v) over out-neighbors v.
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = 0.0;
      for (const int64_t v : out_of(i)) acc += auth_next[v];
      hub_next[i] = acc;
    });
    normalize(auth_next);
    normalize(hub_next);

    const double delta = DeterministicBlockSum(0, n, [&](int64_t i) {
      return std::abs(auth_next[i] - auth[i]) + std::abs(hub_next[i] - hub[i]);
    });
    auth.swap(auth_next);
    hub.swap(hub_next);
    if (config.tol > 0 && delta < config.tol) break;
  }
  return HitsScores{ni.Zip(hub), ni.Zip(auth)};
}

}  // namespace

Result<HitsScores> Hits(const DirectedGraph& g, const HitsConfig& config) {
  if (config.max_iters < 1) {
    return Status::InvalidArgument("HITS needs at least one iteration");
  }
  if (g.NumNodes() == 0) return HitsScores{};
  trace::Span span("Algo/Hits");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));

  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    return IterateHits(
        view->NumNodes(), view->node_index(),
        [&](int64_t i) { return view->In(i); },
        [&](int64_t i) { return view->Out(i); }, config);
  }

  // Legacy oracle: per-call dense in/out adjacency from the hash table (one
  // hash probe per edge during the build).
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<std::vector<int64_t>> in(n), out(n);
  for (int64_t i = 0; i < n; ++i) {
    const DirectedGraph::NodeData* nd = g.GetNode(ni.IdOf(i));
    in[i].reserve(nd->in.size());
    for (NodeId u : nd->in) in[i].push_back(ni.IndexOf(u));
    out[i].reserve(nd->out.size());
    for (NodeId v : nd->out) out[i].push_back(ni.IndexOf(v));
  }
  return IterateHits(
      n, ni,
      [&](int64_t i) { return std::span<const int64_t>(in[i]); },
      [&](int64_t i) { return std::span<const int64_t>(out[i]); }, config);
}

}  // namespace ringo
