#include "algo/hits.h"

#include <cmath>

#include "algo/node_index.h"
#include "util/parallel.h"

namespace ringo {

Result<HitsScores> Hits(const DirectedGraph& g, const HitsConfig& config) {
  if (config.max_iters < 1) {
    return Status::InvalidArgument("HITS needs at least one iteration");
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  if (n == 0) return HitsScores{};

  std::vector<const DirectedGraph::NodeData*> node_ptr(n);
  for (int64_t i = 0; i < n; ++i) node_ptr[i] = g.GetNode(ni.IdOf(i));

  std::vector<double> hub(n, 1.0), auth(n, 1.0);
  std::vector<double> hub_next(n), auth_next(n);
  auto normalize = [n](std::vector<double>& v) {
    double norm = 0.0;
    for (int64_t i = 0; i < n; ++i) norm += v[i] * v[i];
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (int64_t i = 0; i < n; ++i) v[i] /= norm;
    }
  };
  normalize(hub);
  normalize(auth);

  for (int iter = 0; iter < config.max_iters; ++iter) {
    // auth(v) = sum of hub(u) over in-neighbors u.
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = 0.0;
      for (NodeId u : node_ptr[i]->in) acc += hub[ni.IndexOf(u)];
      auth_next[i] = acc;
    });
    // hub(u) = sum of auth(v) over out-neighbors v.
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = 0.0;
      for (NodeId v : node_ptr[i]->out) acc += auth_next[ni.IndexOf(v)];
      hub_next[i] = acc;
    });
    normalize(auth_next);
    normalize(hub_next);

    double delta = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      delta += std::abs(auth_next[i] - auth[i]) + std::abs(hub_next[i] - hub[i]);
    }
    auth.swap(auth_next);
    hub.swap(hub_next);
    if (config.tol > 0 && delta < config.tol) break;
  }
  return HitsScores{ni.Zip(hub), ni.Zip(auth)};
}

}  // namespace ringo
