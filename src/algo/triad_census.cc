#include "algo/triad_census.h"

#include <algorithm>

#include "algo/node_index.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace ringo {

const char* TriadTypeName(TriadType t) {
  switch (t) {
    case TriadType::k003: return "003";
    case TriadType::k012: return "012";
    case TriadType::k102: return "102";
    case TriadType::k021D: return "021D";
    case TriadType::k021U: return "021U";
    case TriadType::k021C: return "021C";
    case TriadType::k111D: return "111D";
    case TriadType::k111U: return "111U";
    case TriadType::k030T: return "030T";
    case TriadType::k030C: return "030C";
    case TriadType::k201: return "201";
    case TriadType::k120D: return "120D";
    case TriadType::k120U: return "120U";
    case TriadType::k120C: return "120C";
    case TriadType::k210: return "210";
    case TriadType::k300: return "300";
  }
  return "?";
}

TriadType ClassifyTriadCode(int code) {
  const bool uv = code & 1, vu = code & 2, uw = code & 4, wu = code & 8,
             vw = code & 16, wv = code & 32;
  // Dyad states: 0 = null, 1 = asymmetric, 2 = mutual.
  auto dyad = [](bool a, bool b) { return (a && b) ? 2 : (a || b) ? 1 : 0; };
  const int d_uv = dyad(uv, vu), d_uw = dyad(uw, wu), d_vw = dyad(vw, wv);
  int mutual = 0, asym = 0;
  for (int d : {d_uv, d_uw, d_vw}) {
    if (d == 2) ++mutual;
    if (d == 1) ++asym;
  }

  // Per-node out/in degrees restricted to the triple.
  const int out_u = uv + uw, out_v = vu + vw, out_w = wu + wv;
  const int in_u = vu + wu, in_v = uv + wv, in_w = uw + vw;

  switch (mutual * 10 + asym) {
    case 0: return TriadType::k003;
    case 1: return TriadType::k012;
    case 10: return TriadType::k102;
    case 2: {  // 021: two asymmetric arcs.
      // Same tail → D (diverging), same head → U (converging), else chain.
      if (out_u == 2 || out_v == 2 || out_w == 2) return TriadType::k021D;
      if (in_u == 2 || in_v == 2 || in_w == 2) return TriadType::k021U;
      return TriadType::k021C;
    }
    case 11: {  // 111: one mutual dyad + one arc.
      // The third node (outside the dyad) either sends the arc into the
      // dyad (D) or receives it (U).
      int third;  // 0=u,1=v,2=w — the node not in the mutual dyad.
      if (d_uv == 2) third = 2;
      else if (d_uw == 2) third = 1;
      else third = 0;
      const int third_out = third == 0 ? out_u : third == 1 ? out_v : out_w;
      return third_out == 1 ? TriadType::k111D : TriadType::k111U;
    }
    case 3: {  // 030: three asymmetric arcs.
      // Cyclic iff every node has out-degree exactly 1.
      return (out_u == 1 && out_v == 1 && out_w == 1) ? TriadType::k030C
                                                      : TriadType::k030T;
    }
    case 20: return TriadType::k201;
    case 12: {  // 120: one mutual dyad + two arcs.
      int third;
      if (d_uv == 2) third = 2;
      else if (d_uw == 2) third = 1;
      else third = 0;
      const int third_out = third == 0 ? out_u : third == 1 ? out_v : out_w;
      if (third_out == 2) return TriadType::k120D;  // c→a, c→b.
      if (third_out == 0) return TriadType::k120U;  // a→c, b→c.
      return TriadType::k120C;
    }
    case 21: return TriadType::k210;
    case 30: return TriadType::k300;
  }
  RINGO_LOG(Fatal) << "unreachable triad code " << code;
  return TriadType::k003;
}

std::array<int64_t, kNumTriadTypes> TriadCensus(const DirectedGraph& g) {
  std::array<int64_t, kNumTriadTypes> census{};
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  RINGO_CHECK_LE(n, 3000000) << "TriadCensus: C(n,3) would overflow";
  if (n < 3) return census;

  // Dense out-sets and linked-neighbor sets (any direction), sorted,
  // self-loops dropped.
  std::vector<std::vector<int64_t>> out(n), nbr(n);
  ParallelForDynamic(0, n, [&](int64_t i) {
    const DirectedGraph::NodeData* nd = g.GetNode(ni.IdOf(i));
    for (NodeId v : nd->out) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) out[i].push_back(j);
    }
    std::sort(out[i].begin(), out[i].end());
    nbr[i].reserve(nd->out.size() + nd->in.size());
    for (NodeId v : nd->out) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) nbr[i].push_back(j);
    }
    for (NodeId v : nd->in) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) nbr[i].push_back(j);
    }
    std::sort(nbr[i].begin(), nbr[i].end());
    nbr[i].erase(std::unique(nbr[i].begin(), nbr[i].end()), nbr[i].end());
  });

  auto has_arc = [&](int64_t a, int64_t b) {
    return std::binary_search(out[a].begin(), out[a].end(), b);
  };
  auto linked = [&](int64_t a, int64_t b) {
    return std::binary_search(nbr[a].begin(), nbr[a].end(), b);
  };
  auto code_of = [&](int64_t u, int64_t v, int64_t w) {
    return (has_arc(u, v) ? 1 : 0) | (has_arc(v, u) ? 2 : 0) |
           (has_arc(u, w) ? 4 : 0) | (has_arc(w, u) ? 8 : 0) |
           (has_arc(v, w) ? 16 : 0) | (has_arc(w, v) ? 32 : 0);
  };

  // Batagelj–Mrvar: every triple with >= 1 linked pair is counted exactly
  // once, from its lexicographically first linked pair.
  const int threads = NumThreads();
  std::vector<std::array<int64_t, kNumTriadTypes>> partial(
      threads, std::array<int64_t, kNumTriadTypes>{});
#pragma omp parallel num_threads(threads)
  {
    const int t = omp_get_thread_num();
    std::vector<int64_t> s;  // N(u) ∪ N(v) \ {u, v}.
#pragma omp for schedule(dynamic, 64)
    for (int64_t u = 0; u < n; ++u) {
      for (int64_t v : nbr[u]) {
        if (u >= v) continue;
        s.clear();
        std::set_union(nbr[u].begin(), nbr[u].end(), nbr[v].begin(),
                       nbr[v].end(), std::back_inserter(s));
        int64_t s_size = 0;
        for (int64_t w : s) {
          if (w == u || w == v) continue;
          ++s_size;
          if (v < w || (u < w && w < v && !linked(u, w))) {
            ++partial[t][static_cast<int>(ClassifyTriadCode(code_of(u, v, w)))];
          }
        }
        // Triples whose third node is isolated from {u, v}.
        const TriadType dyad_type =
            (has_arc(u, v) && has_arc(v, u)) ? TriadType::k102
                                             : TriadType::k012;
        partial[t][static_cast<int>(dyad_type)] += n - s_size - 2;
      }
    }
  }
  for (int t = 0; t < threads; ++t) {
    for (int k = 0; k < kNumTriadTypes; ++k) census[k] += partial[t][k];
  }

  // Everything else is the empty triad.
  const int64_t total = n * (n - 1) * (n - 2) / 6;
  int64_t nonempty = 0;
  for (int k = 1; k < kNumTriadTypes; ++k) nonempty += census[k];
  census[static_cast<int>(TriadType::k003)] = total - nonempty;
  return census;
}

}  // namespace ringo
