// Node centrality measures — the "various other node centrality measures"
// the §4.1 demo offers alongside PageRank and HITS: degree, closeness,
// harmonic, betweenness (Brandes), and eigenvector centrality.
//
// The BFS-per-node kernels traverse AlgoView CSR spans by default;
// csr::SetEnabled(false) selects the legacy hash-adjacency scaffold kept
// as the parity oracle. Betweenness accumulates per fixed source block
// (not per thread), so every measure is bit-identical at any thread count.
#ifndef RINGO_ALGO_CENTRALITY_H_
#define RINGO_ALGO_CENTRALITY_H_

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"
#include "util/result.h"

namespace ringo {

// Degree centrality: degree / (n - 1). For directed graphs, uses
// in+out degree.
NodeValues DegreeCentrality(const UndirectedGraph& g);
NodeValues InDegreeCentrality(const DirectedGraph& g);
NodeValues OutDegreeCentrality(const DirectedGraph& g);

// Closeness centrality of node u: (r-1) / sum-of-distances, scaled by
// (r-1)/(n-1) for disconnected graphs (Wasserman-Faust), where r is the
// size of u's reachable set. Exact: one BFS per node (parallel across
// nodes).
NodeValues ClosenessCentrality(const UndirectedGraph& g);

// Sampled approximation: BFS from `samples` pivots chosen deterministically
// from `seed`; estimates sum-of-distances by extrapolation.
NodeValues ApproxClosenessCentrality(const UndirectedGraph& g,
                                     int64_t samples, uint64_t seed = 1);

// Harmonic centrality: sum over v != u of 1/dist(u, v), normalized by n-1.
NodeValues HarmonicCentrality(const UndirectedGraph& g);

// Betweenness centrality via Brandes' algorithm (exact; one augmented BFS
// per node, parallel across source nodes). Undirected pair counting: each
// pair contributes once.
NodeValues BetweennessCentrality(const UndirectedGraph& g);

// Brandes with sampled sources — the standard approximation for large
// graphs; values are scaled by n/samples.
NodeValues ApproxBetweennessCentrality(const UndirectedGraph& g,
                                       int64_t samples, uint64_t seed = 1);

// Directed variants: distances follow out-edges; betweenness counts each
// ordered pair once (no halving).
NodeValues ClosenessCentralityDirected(const DirectedGraph& g);
NodeValues BetweennessCentralityDirected(const DirectedGraph& g);

// Eigenvector centrality by power iteration on the undirected adjacency
// matrix; L2-normalized. Fails if the iteration collapses (empty graph).
Result<NodeValues> EigenvectorCentrality(const UndirectedGraph& g,
                                         int max_iters = 100,
                                         double tol = 1e-10);

// Eccentricity of every node (max BFS distance within its component).
NodeInts Eccentricities(const UndirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_CENTRALITY_H_
