// Approximate Neighborhood Function (ANF, Palmer et al. 2002): estimates
// N(h) — how many (ordered) node pairs are within h hops — using
// Flajolet–Martin sketches, in O(k · h · m) time instead of one BFS per
// node. This is the standard tool for diameter statistics on graphs where
// exact all-pairs BFS is infeasible; compare algo/diameter.h for the
// sampling-based estimator. Sketch propagation ORs over AlgoView CSR spans
// by default (csr::SetEnabled(false) = legacy hash-adjacency oracle); for
// a fixed seed the estimates are bit-identical across thread counts and
// between the two paths.
#ifndef RINGO_ALGO_ANF_H_
#define RINGO_ALGO_ANF_H_

#include <cstdint>
#include <vector>

#include "graph/undirected_graph.h"
#include "util/result.h"

namespace ringo {

struct AnfResult {
  // neighborhood[h] ≈ Σ_u |{v : dist(u, v) <= h}| for h = 0..max_h
  // (self-pairs included, so neighborhood[0] ≈ n).
  std::vector<double> neighborhood;
  // Smallest (interpolated) h with neighborhood[h] >= 0.9 * plateau.
  double effective_diameter = 0;
};

// `k` = number of Flajolet–Martin sketch runs; relative error shrinks like
// 1/sqrt(k). Deterministic per seed.
Result<AnfResult> ApproxNeighborhoodFunction(const UndirectedGraph& g,
                                             int64_t max_h, int64_t k = 64,
                                             uint64_t seed = 1);

}  // namespace ringo

#endif  // RINGO_ALGO_ANF_H_
