// HITS (Kleinberg's hubs & authorities), one of the centrality measures the
// §4.1 demo offers for expert finding. Runs on AlgoView CSR spans by
// default; csr::SetEnabled(false) selects the legacy hash-adjacency oracle
// (identical arithmetic, bit-identical at any thread count).
#ifndef RINGO_ALGO_HITS_H_
#define RINGO_ALGO_HITS_H_

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "util/result.h"

namespace ringo {

struct HitsScores {
  NodeValues hubs;         // (id, hub score), ascending by id.
  NodeValues authorities;  // (id, authority score), ascending by id.
};

struct HitsConfig {
  int max_iters = 100;
  double tol = 1e-10;  // L1 convergence threshold; 0 = run max_iters.
};

// Iterative HITS; scores are L2-normalized each iteration.
Result<HitsScores> Hits(const DirectedGraph& g, const HitsConfig& config = {});

}  // namespace ringo

#endif  // RINGO_ALGO_HITS_H_
