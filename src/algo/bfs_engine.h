// Direction-optimizing parallel BFS over an AlgoView (DESIGN.md §9).
//
// The engine runs level-synchronous BFS in one of two step kinds per level:
//   * top-down: expand the frontier; threads claim unvisited vertices with
//     a CAS on the dense dist array into per-thread buffers, which are
//     concatenated and radix-sorted so the next frontier is ascending;
//   * bottom-up: scan unvisited vertices for any in-frontier predecessor
//     (bitmap test), writing dist/parent without atomics — vertices are
//     partitioned into word-aligned blocks so all writes are block-local.
// Strategy::kAuto switches between them with Beamer's alpha/beta heuristic
// driven by scanned-edge estimates; Strategy::kTopDown pins top-down (the
// parity baseline for tests).
//
// Determinism: results are bit-identical for every thread count, strategy,
// and step schedule. dist is the unique hop distance. parent is pinned to
// the *minimum-id* predecessor on a shortest path (dense numbering is
// ascending-id): top-down takes an atomic min over all discoverers,
// bottom-up takes the first frontier hit in an ascending neighbor scan,
// and the sequential path iterates an ascending frontier — all three
// compute the same vertex.
#ifndef RINGO_ALGO_BFS_ENGINE_H_
#define RINGO_ALGO_BFS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "algo/algo_view.h"
#include "algo/bfs.h"

namespace ringo {
namespace bfs {

enum class Strategy : char {
  kAuto,     // Direction-optimizing (alpha/beta switching).
  kTopDown,  // Frontier expansion only.
};

struct Options {
  Strategy strategy = Strategy::kAuto;
  bool need_parents = false;
  // Dense index to search for; the walk stops after the level that reaches
  // it completes (whole levels only, so parents stay canonical). -1 = full.
  int64_t stop_at = -1;
  double alpha = 15.0;  // Top-down -> bottom-up: scout*alpha > unexplored.
  double beta = 18.0;   // Bottom-up -> top-down: shrinking and awake*beta < n.
};

struct DenseBfs {
  std::vector<int64_t> dist;    // n entries; -1 = unreachable.
  std::vector<int64_t> parent;  // Min-id predecessor; -1 = none/source.
                                // Empty unless Options::need_parents.
  int64_t reached = 0;          // Vertices with dist >= 0.
  int64_t max_depth = 0;        // Deepest level reached.
  int64_t top_down_steps = 0;
  int64_t bottom_up_steps = 0;
};

// BFS from dense index `src` (out of range => all-unreachable result).
// `dir` is interpreted against the view: kOut follows out-arcs, kIn
// in-arcs, kBoth both; undirected views ignore it.
DenseBfs Run(const AlgoView& view, int64_t src, BfsDir dir,
             const Options& opts = {});

// Minimal sequential BFS filling `dist` (resized to n, -1 = unreachable).
// No parallel primitives inside, so it is safe to call from within a
// parallel region (per-pivot BFS in EstimateDiameter). Returns the number
// of reached vertices.
int64_t SequentialDistances(const AlgoView& view, int64_t src, BfsDir dir,
                            std::vector<int64_t>* dist);

}  // namespace bfs
}  // namespace ringo

#endif  // RINGO_ALGO_BFS_ENGINE_H_
