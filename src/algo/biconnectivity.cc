#include "algo/biconnectivity.h"

#include <algorithm>

#include "algo/node_index.h"

namespace ringo {

Biconnectivity FindCutPointsAndBridges(const UndirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();

  // Dense adjacency without self-loops.
  std::vector<std::vector<int64_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (NodeId v : g.GetNode(ni.IdOf(i))->nbrs) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) adj[i].push_back(j);
    }
  }

  constexpr int64_t kUnvisited = -1;
  std::vector<int64_t> disc(n, kUnvisited), low(n, kUnvisited);
  std::vector<uint8_t> is_cut(n, 0);
  std::vector<Edge> bridges;
  int64_t timer = 0;

  // Iterative DFS frames: (node, parent, next-child index, parent edge
  // already skipped once — needed because a simple graph stores the parent
  // link exactly once in the child's adjacency).
  struct Frame {
    int64_t u, parent;
    size_t child;
    bool parent_skipped;
  };
  std::vector<Frame> stack;

  for (int64_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    int64_t root_children = 0;
    stack.push_back({root, -1, 0, false});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.child < adj[f.u].size()) {
        const int64_t v = adj[f.u][f.child++];
        if (v == f.parent && !f.parent_skipped) {
          f.parent_skipped = true;  // The tree edge back to the parent.
          continue;
        }
        if (disc[v] == kUnvisited) {
          if (f.u == root) ++root_children;
          disc[v] = low[v] = timer++;
          stack.push_back({v, f.u, 0, false});
        } else {
          low[f.u] = std::min(low[f.u], disc[v]);  // Back edge.
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (done.parent >= 0) {
          low[done.parent] = std::min(low[done.parent], low[done.u]);
          if (low[done.u] > disc[done.parent]) {
            const NodeId a = ni.IdOf(done.parent);
            const NodeId b = ni.IdOf(done.u);
            bridges.emplace_back(std::min(a, b), std::max(a, b));
          }
          if (done.parent != root && low[done.u] >= disc[done.parent]) {
            is_cut[done.parent] = 1;
          }
        }
      }
    }
    if (root_children >= 2) is_cut[root] = 1;
  }

  Biconnectivity out;
  for (int64_t i = 0; i < n; ++i) {
    if (is_cut[i]) out.articulation_points.push_back(ni.IdOf(i));
  }
  std::sort(bridges.begin(), bridges.end());
  out.bridges = std::move(bridges);
  return out;
}

}  // namespace ringo
