#include "algo/transform.h"

#include <algorithm>
#include <memory>

#include "algo/algo_view.h"
#include "algo/bfs.h"
#include "algo/bfs_engine.h"
#include "algo/connectivity.h"
#include "storage/flat_hash_map.h"
#include "util/rng.h"

namespace ringo {

DirectedGraph Subgraph(const DirectedGraph& g,
                       const std::vector<NodeId>& nodes) {
  FlatHashSet<NodeId> keep;
  keep.Reserve(static_cast<int64_t>(nodes.size()));
  DirectedGraph out;
  for (NodeId id : nodes) {
    if (g.HasNode(id)) {
      keep.Insert(id);
      out.AddNode(id);
    }
  }
  keep.ForEach([&](NodeId u) {
    for (NodeId v : g.GetNode(u)->out) {
      if (keep.Contains(v)) out.AddEdge(u, v);
    }
  });
  return out;
}

UndirectedGraph Subgraph(const UndirectedGraph& g,
                         const std::vector<NodeId>& nodes) {
  FlatHashSet<NodeId> keep;
  keep.Reserve(static_cast<int64_t>(nodes.size()));
  UndirectedGraph out;
  for (NodeId id : nodes) {
    if (g.HasNode(id)) {
      keep.Insert(id);
      out.AddNode(id);
    }
  }
  keep.ForEach([&](NodeId u) {
    for (NodeId v : g.GetNode(u)->nbrs) {
      if (u <= v && keep.Contains(v)) out.AddEdge(u, v);
    }
  });
  return out;
}

DirectedGraph Reverse(const DirectedGraph& g) {
  DirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  g.ForEachEdge([&](NodeId u, NodeId v) { out.AddEdge(v, u); });
  return out;
}

UndirectedGraph ToUndirected(const DirectedGraph& g) {
  UndirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  g.ForEachEdge([&](NodeId u, NodeId v) { out.AddEdge(u, v); });
  return out;
}

DirectedGraph ToDirected(const UndirectedGraph& g) {
  DirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const UndirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  g.ForEachEdge([&](NodeId u, NodeId v) {
    out.AddEdge(u, v);
    if (u != v) out.AddEdge(v, u);
  });
  return out;
}

DirectedGraph RemoveSelfLoops(const DirectedGraph& g) {
  DirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (u != v) out.AddEdge(u, v);
  });
  return out;
}

UndirectedGraph RemoveSelfLoops(const UndirectedGraph& g) {
  UndirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const UndirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  g.ForEachEdge([&](NodeId u, NodeId v) {
    if (u != v) out.AddEdge(u, v);
  });
  return out;
}

DirectedGraph MaxWccSubgraph(const DirectedGraph& g) {
  return Subgraph(g, LargestComponent(WeaklyConnectedComponents(g)));
}

UndirectedGraph MaxConnectedSubgraph(const UndirectedGraph& g) {
  return Subgraph(g, LargestComponent(ConnectedComponents(g)));
}

DirectedGraph MaxSccSubgraph(const DirectedGraph& g) {
  return Subgraph(g, LargestComponent(StronglyConnectedComponents(g)));
}

DirectedGraph SampleNodes(const DirectedGraph& g, int64_t k, uint64_t seed) {
  std::vector<NodeId> ids = g.SortedNodeIds();
  const int64_t n = static_cast<int64_t>(ids.size());
  const int64_t take = std::min(k, n);
  Rng rng(seed);
  for (int64_t i = 0; i < take; ++i) {
    std::swap(ids[i], ids[rng.UniformInt(i, n - 1)]);
  }
  ids.resize(std::max<int64_t>(take, 0));
  return Subgraph(g, ids);
}

DirectedGraph SampleEdges(const DirectedGraph& g, int64_t k, uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  std::sort(edges.begin(), edges.end());  // Hash order → deterministic.
  const int64_t m = static_cast<int64_t>(edges.size());
  const int64_t take = std::min(k, m);
  Rng rng(seed);
  for (int64_t i = 0; i < take; ++i) {
    std::swap(edges[i], edges[rng.UniformInt(i, m - 1)]);
  }
  DirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  for (int64_t i = 0; i < std::max<int64_t>(take, 0); ++i) {
    out.AddEdge(edges[i].first, edges[i].second);
  }
  return out;
}

DirectedGraph GraphUnion(const DirectedGraph& a, const DirectedGraph& b) {
  DirectedGraph out;
  out.ReserveNodes(a.NumNodes() + b.NumNodes());
  a.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  b.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  a.ForEachEdge([&](NodeId u, NodeId v) { out.AddEdge(u, v); });
  b.ForEachEdge([&](NodeId u, NodeId v) { out.AddEdge(u, v); });
  return out;
}

DirectedGraph GraphIntersection(const DirectedGraph& a,
                                const DirectedGraph& b) {
  DirectedGraph out;
  a.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    if (b.HasNode(id)) out.AddNode(id);
  });
  a.ForEachEdge([&](NodeId u, NodeId v) {
    if (b.HasEdge(u, v)) out.AddEdge(u, v);
  });
  return out;
}

DirectedGraph GraphDifference(const DirectedGraph& a,
                              const DirectedGraph& b) {
  DirectedGraph out;
  out.ReserveNodes(a.NumNodes());
  a.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  a.ForEachEdge([&](NodeId u, NodeId v) {
    if (!b.HasEdge(u, v)) out.AddEdge(u, v);
  });
  return out;
}

DirectedGraph Egonet(const DirectedGraph& g, NodeId center, int64_t radius,
                     bool undirected) {
  if (!g.HasNode(center)) return DirectedGraph{};
  // Run the dense engine directly: the ball is read straight off the dist
  // array instead of materializing the full (id, hops) pair list.
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const bfs::DenseBfs r = bfs::Run(
      *view, view->IndexOf(center), undirected ? BfsDir::kBoth : BfsDir::kOut);
  std::vector<NodeId> ball;
  const int64_t n = view->NumNodes();
  for (int64_t i = 0; i < n; ++i) {
    if (r.dist[i] >= 0 && r.dist[i] <= radius) ball.push_back(view->IdOf(i));
  }
  return Subgraph(g, ball);
}

DirectedGraph RewireEdges(const DirectedGraph& g, int64_t swaps,
                          uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(g.NumEdges());
  g.ForEachEdge([&](NodeId u, NodeId v) { edges.emplace_back(u, v); });
  std::sort(edges.begin(), edges.end());  // Hash order → deterministic.
  FlatHashSet<Edge, PairHash> present;
  present.Reserve(static_cast<int64_t>(edges.size()));
  for (const Edge& e : edges) present.Insert(e);

  Rng rng(seed);
  const int64_t m = static_cast<int64_t>(edges.size());
  for (int64_t s = 0; s < swaps && m >= 2; ++s) {
    const int64_t a = rng.UniformInt(0, m - 1);
    const int64_t b = rng.UniformInt(0, m - 1);
    if (a == b) continue;
    const auto [u1, v1] = edges[a];
    const auto [u2, v2] = edges[b];
    // Proposed: u1→v2, u2→v1.
    if (u1 == v2 || u2 == v1) continue;  // Would create self-loops.
    if (present.Contains({u1, v2}) || present.Contains({u2, v1})) continue;
    present.Erase({u1, v1});
    present.Erase({u2, v2});
    present.Insert({u1, v2});
    present.Insert({u2, v1});
    edges[a] = {u1, v2};
    edges[b] = {u2, v1};
  }

  DirectedGraph out;
  out.ReserveNodes(g.NumNodes());
  g.ForEachNode([&](NodeId id, const DirectedGraph::NodeData&) {
    out.AddNode(id);
  });
  for (const Edge& e : edges) out.AddEdge(e.first, e.second);
  return out;
}

}  // namespace ringo
