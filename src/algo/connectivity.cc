#include "algo/connectivity.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "algo/algo_view.h"
#include "algo/node_index.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Union-find with path halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int64_t Find(int64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int64_t a, int64_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
};

// Renumbers per-index labels densely by first occurrence (index order =
// ascending node id, so component 0 holds the smallest id).
ComponentLabels Relabel(const NodeIndex& ni, std::vector<int64_t>& raw) {
  const int64_t n = ni.size();
  FlatHashMap<int64_t, int64_t> dense;
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    labels[i] = *dense.Insert(raw[i], dense.size()).first;
  }
  return ni.Zip(labels);
}

}  // namespace

ComponentLabels WeaklyConnectedComponents(const DirectedGraph& g) {
  trace::Span span("Algo/WeaklyConnectedComponents");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  // The view's arcs are already dense indices — no per-edge hash lookups.
  // Union order cannot affect the labels: Relabel renumbers by first
  // occurrence in ascending index order.
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const int64_t n = view->NumNodes();
  UnionFind uf(n);
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v : view->Out(u)) uf.Union(u, v);
  }
  std::vector<int64_t> raw(n);
  for (int64_t i = 0; i < n; ++i) raw[i] = uf.Find(i);
  return Relabel(view->node_index(), raw);
}

ComponentLabels ConnectedComponents(const UndirectedGraph& g) {
  trace::Span span("Algo/ConnectedComponents");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const int64_t n = view->NumNodes();
  UnionFind uf(n);
  for (int64_t u = 0; u < n; ++u) {
    // Each edge appears from both endpoints; the second Union is a no-op.
    for (int64_t v : view->Out(u)) uf.Union(u, v);
  }
  std::vector<int64_t> raw(n);
  for (int64_t i = 0; i < n; ++i) raw[i] = uf.Find(i);
  return Relabel(view->node_index(), raw);
}

ComponentLabels StronglyConnectedComponents(const DirectedGraph& g) {
  trace::Span span("Algo/StronglyConnectedComponents");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const int64_t n = view->NumNodes();
  // Tarjan walks the view's out-arc spans directly (dense indices).
  const AlgoView& out = *view;

  // Iterative Tarjan. An explicit frame stack replaces recursion so graphs
  // with multi-million-node chains don't blow the C++ stack.
  constexpr int64_t kUnvisited = -1;
  std::vector<int64_t> low(n, kUnvisited), disc(n, kUnvisited);
  std::vector<int64_t> scc(n, kUnvisited);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<int64_t> stack;           // Tarjan's node stack.
  std::vector<std::pair<int64_t, size_t>> frames;  // (node, next-child).
  int64_t timer = 0, components = 0;
  // Adjacency of the frame currently on top, refreshed when the top
  // changes: on a compressed base this decodes each frame's run once per
  // top-change instead of once per child access.
  NbrSpan run;
  int64_t run_node = -1;

  for (int64_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    frames.emplace_back(root, 0);
    while (!frames.empty()) {
      auto& [u, child] = frames.back();
      if (u != run_node) {
        run = out.Out(u);
        run_node = u;
      }
      if (child == 0) {
        disc[u] = low[u] = timer++;
        stack.push_back(u);
        on_stack[u] = 1;
      }
      if (child < run.size()) {
        const int64_t v = run[child++];
        if (disc[v] == kUnvisited) {
          frames.emplace_back(v, 0);
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        if (low[u] == disc[u]) {
          while (true) {
            const int64_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc[w] = components;
            if (w == u) break;
          }
          ++components;
        }
        const int64_t done = u;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().first] =
              std::min(low[frames.back().first], low[done]);
        }
      }
    }
  }
  return Relabel(view->node_index(), scc);
}

std::vector<int64_t> ComponentSizes(const ComponentLabels& labels) {
  int64_t max_label = -1;
  for (const auto& [id, c] : labels) max_label = std::max(max_label, c);
  std::vector<int64_t> sizes(max_label + 1, 0);
  for (const auto& [id, c] : labels) ++sizes[c];
  return sizes;
}

std::vector<NodeId> LargestComponent(const ComponentLabels& labels) {
  const std::vector<int64_t> sizes = ComponentSizes(labels);
  if (sizes.empty()) return {};
  const int64_t best =
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin();
  std::vector<NodeId> out;
  out.reserve(sizes[best]);
  for (const auto& [id, c] : labels) {
    if (c == best) out.push_back(id);
  }
  return out;
}

bool IsWeaklyConnected(const DirectedGraph& g) {
  if (g.NumNodes() == 0) return true;
  const std::vector<int64_t> sizes =
      ComponentSizes(WeaklyConnectedComponents(g));
  return sizes.size() == 1;
}

bool IsConnected(const UndirectedGraph& g) {
  if (g.NumNodes() == 0) return true;
  return ComponentSizes(ConnectedComponents(g)).size() == 1;
}

}  // namespace ringo
