// Diameter estimation by BFS from sampled pivots: approximate full
// diameter (max eccentricity seen) and the 90th-percentile "effective
// diameter" commonly reported for social networks.
#ifndef RINGO_ALGO_DIAMETER_H_
#define RINGO_ALGO_DIAMETER_H_

#include <cstdint>

#include "graph/undirected_graph.h"

namespace ringo {

struct DiameterEstimate {
  int64_t diameter = 0;          // Max BFS depth seen from any pivot.
  double effective_diameter = 0; // Interpolated 90th percentile distance.
  double avg_distance = 0;       // Mean over sampled reachable pairs.
};

// BFS from `samples` deterministic pivots (all nodes if samples >= n).
DiameterEstimate EstimateDiameter(const UndirectedGraph& g, int64_t samples,
                                  uint64_t seed = 1);

// Exact diameter: BFS from every node. O(n*m) — small graphs only.
int64_t ExactDiameter(const UndirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_DIAMETER_H_
