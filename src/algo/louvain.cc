#include "algo/louvain.h"

#include <algorithm>
#include <numeric>

#include "algo/algo_view.h"
#include "algo/community.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Weighted working graph for one Louvain level. Self-loops carry the
// intra-community weight of the collapsed communities; by convention a
// self-loop of weight w contributes 2w to its node's weighted degree.
struct LevelGraph {
  std::vector<std::vector<std::pair<int64_t, double>>> adj;  // (nbr, w).
  std::vector<double> self_weight;
  std::vector<double> k;  // Weighted degree (self-loops doubled).
  double total_weight = 0;  // m = sum of edge weights (each edge once).

  int64_t size() const { return static_cast<int64_t>(adj.size()); }
};

// One level of local moving; fills `comm` (dense community per node) and
// returns the modularity gain achieved.
double LocalMove(const LevelGraph& lg, const LouvainConfig& config,
                 uint64_t level_seed, std::vector<int64_t>* comm) {
  const int64_t n = lg.size();
  comm->resize(n);
  std::iota(comm->begin(), comm->end(), 0);
  std::vector<double> sum_tot(lg.k);  // Total weighted degree per community.

  std::vector<int64_t> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  Rng rng(level_seed);

  const double m2 = 2.0 * lg.total_weight;
  if (m2 <= 0) return 0;

  double total_gain = 0;
  FlatHashMap<int64_t, double> weight_to;  // Community → edge weight from i.
  for (int pass = 0; pass < config.max_passes_per_level; ++pass) {
    // Shuffle the visiting order.
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(visit[i], visit[rng.UniformInt(0, i)]);
    }
    double pass_gain = 0;
    for (int64_t i : visit) {
      const int64_t old_c = (*comm)[i];
      weight_to.Clear();
      for (const auto& [j, w] : lg.adj[i]) {
        if (j != i) weight_to.GetOrInsert((*comm)[j]) += w;
      }
      // Remove i from its community.
      sum_tot[old_c] -= lg.k[i];
      const double w_old = [&] {
        const double* w = weight_to.Find(old_c);
        return w == nullptr ? 0.0 : *w;
      }();

      // Best target community by modularity gain
      //   ΔQ(c) ∝ w_i→c − sum_tot[c] · k_i / 2m.
      int64_t best_c = old_c;
      double best_gain = w_old - sum_tot[old_c] * lg.k[i] / m2;
      weight_to.ForEach([&](const int64_t& c, const double& w) {
        if (c == old_c) return;
        const double gain = w - sum_tot[c] * lg.k[i] / m2;
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && c < best_c)) {
          best_gain = gain;
          best_c = c;
        }
      });

      sum_tot[best_c] += lg.k[i];
      (*comm)[i] = best_c;
      if (best_c != old_c) {
        pass_gain += 2.0 * (best_gain -
                            (w_old - sum_tot[old_c] * lg.k[i] / m2)) /
                     m2;
      }
    }
    total_gain += pass_gain;
    if (pass_gain < config.min_gain) break;
  }
  return total_gain;
}

// Collapses communities into a smaller weighted graph; `comm` is
// renumbered densely and returned as the node→super-node map.
LevelGraph Aggregate(const LevelGraph& lg, std::vector<int64_t>* comm) {
  // Dense renumbering.
  FlatHashMap<int64_t, int64_t> dense;
  for (int64_t i = 0; i < lg.size(); ++i) {
    (*comm)[i] = *dense.Insert((*comm)[i], dense.size()).first;
  }
  const int64_t nc = dense.size();

  LevelGraph out;
  out.adj.resize(nc);
  out.self_weight.assign(nc, 0);
  out.k.assign(nc, 0);
  out.total_weight = lg.total_weight;

  // Sum edge weights between community pairs.
  FlatHashMap<Edge, double, PairHash> agg;
  for (int64_t i = 0; i < lg.size(); ++i) {
    const int64_t ci = (*comm)[i];
    for (const auto& [j, w] : lg.adj[i]) {
      if (j == i) {
        out.self_weight[ci] += w;  // Self-loop weight carries over once.
        continue;
      }
      const int64_t cj = (*comm)[j];
      if (ci == cj) {
        // An intra-community edge is visited from both endpoints; half the
        // weight per visit keeps the collapsed self-loop weight equal to
        // the total intra weight.
        out.self_weight[ci] += w / 2.0;
      } else if (ci < cj) {
        // Each inter-community edge is also visited twice; accumulating
        // only from the (ci < cj) side counts it exactly once.
        agg.GetOrInsert({ci, cj}) += w;
      }
    }
  }
  agg.ForEach([&](const Edge& e, const double& w) {
    out.adj[e.first].push_back({e.second, w});
    out.adj[e.second].push_back({e.first, w});
  });
  for (int64_t c = 0; c < nc; ++c) {
    if (out.self_weight[c] > 0) {
      out.adj[c].push_back({c, out.self_weight[c]});
    }
    double k = 2.0 * out.self_weight[c];
    for (const auto& [j, w] : out.adj[c]) {
      if (j != c) k += w;
    }
    out.k[c] = k;
  }
  return out;
}

// Level-0 graph with unit weights, built either from CSR spans (dense
// indices, no per-edge hash probe) or from the hash-of-vectors adjacency
// (legacy oracle). Both emit neighbors in ascending dense order, so every
// later level is identical between the two paths.
template <typename NbrsFn>
void BuildLevel0(int64_t n, NbrsFn&& nbrs_of, LevelGraph* lg) {
  lg->adj.resize(n);
  lg->self_weight.assign(n, 0);
  lg->k.assign(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    for (const int64_t j : nbrs_of(i)) {
      if (j == i) {
        lg->adj[i].push_back({i, 1.0});
        lg->self_weight[i] += 1.0;
        lg->k[i] += 2.0;
        lg->total_weight += 1.0;
      } else {
        lg->adj[i].push_back({j, 1.0});
        lg->k[i] += 1.0;
        if (i < j) lg->total_weight += 1.0;
      }
    }
  }
}

}  // namespace

Result<LouvainResult> Louvain(const UndirectedGraph& g,
                              const LouvainConfig& config) {
  if (config.max_levels < 1 || config.max_passes_per_level < 1) {
    return Status::InvalidArgument("Louvain needs >= 1 level and pass");
  }
  const int64_t n = g.NumNodes();
  LouvainResult result;
  if (n == 0) return result;
  const bool use_csr = csr::Enabled();
  trace::Span span("Algo/Louvain");
  span.AddAttr("nodes", n);
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("csr", static_cast<int64_t>(use_csr ? 1 : 0));

  std::shared_ptr<const AlgoView> view;  // Pinned while ni is in use.
  NodeIndex legacy_ni;
  LevelGraph lg;
  if (use_csr) {
    view = AlgoView::Of(g);
    BuildLevel0(n, [&](int64_t i) { return view->Out(i); }, &lg);
  } else {
    legacy_ni = NodeIndex::FromGraph(g);
    std::vector<std::vector<int64_t>> adj(n);
    for (int64_t i = 0; i < n; ++i) {
      for (NodeId v : g.GetNode(legacy_ni.IdOf(i))->nbrs) {
        adj[i].push_back(legacy_ni.IndexOf(v));
      }
    }
    BuildLevel0(
        n, [&](int64_t i) -> const std::vector<int64_t>& { return adj[i]; },
        &lg);
  }
  const NodeIndex& ni = use_csr ? view->node_index() : legacy_ni;

  // node → current community through all levels.
  std::vector<int64_t> node_comm(n);
  std::iota(node_comm.begin(), node_comm.end(), 0);

  for (int level = 0; level < config.max_levels; ++level) {
    std::vector<int64_t> comm;
    const double gain =
        LocalMove(lg, config, config.seed + 7919 * level, &comm);
    // Map original nodes through this level's assignment (comm is dense
    // after Aggregate, so apply it after renumbering inside Aggregate).
    const int64_t before = lg.size();
    lg = Aggregate(lg, &comm);
    for (int64_t i = 0; i < n; ++i) {
      node_comm[i] = comm[node_comm[i]];
    }
    ++result.levels;
    if (gain < config.min_gain || lg.size() == before) break;
  }

  // Final labels, renumbered by first occurrence in index order.
  FlatHashMap<int64_t, int64_t> dense;
  result.communities.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = *dense.Insert(node_comm[i], dense.size()).first;
    result.communities.emplace_back(ni.IdOf(i), c);
  }
  result.modularity = Modularity(g, result.communities);
  return result;
}

}  // namespace ringo
