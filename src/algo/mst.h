// Minimum spanning forest (Kruskal + union-find) over an undirected graph
// with an EdgeWeights side table.
#ifndef RINGO_ALGO_MST_H_
#define RINGO_ALGO_MST_H_

#include <vector>

#include "graph/edge_weights.h"
#include "graph/undirected_graph.h"
#include "util/result.h"

namespace ringo {

struct MstResult {
  // Forest edges as (u, v) with u < v, in the order Kruskal accepted them.
  std::vector<Edge> edges;
  double total_weight = 0;
};

// Kruskal's algorithm. Edges missing from `w` default to weight 1.0; ties
// are broken by (u, v) so the result is deterministic. Self-loops are
// skipped. Returns a spanning forest (spanning tree per component).
MstResult MinimumSpanningForest(const UndirectedGraph& g,
                                const EdgeWeights& w);

}  // namespace ringo

#endif  // RINGO_ALGO_MST_H_
