// Kill switch for the compressed (delta+varint) CSR base layout
// (DESIGN.md §14).
//
// With the switch on, AlgoView::BuildFull stores the base neighbor arrays
// delta+varint-encoded and Out()/In() decode runs into pooled thread-local
// scratch behind the same span-shaped interface; with the switch off
// (default), the base stays plain flat arrays — the parity oracle. Same
// discipline as radix::/csr::/deltacsr::SetEnabled, with one deliberate
// inversion: the compact layout is *opt-in* (env RINGO_COMPACT_CSR=on or
// SetEnabled(true)) because it trades per-read decode CPU for ~3-4x less
// memory per arc — the right default for beyond-RAM datasets, not for the
// latency-tracked benchmark rows.
//
// The switch is sampled when a base CSR is built; already-built snapshots
// keep their layout, so toggling never invalidates cached views. Patch
// overlays (DirPatch) are always plain — they are small by the compaction
// invariant.
#ifndef RINGO_ALGO_COMPACTCSR_SWITCH_H_
#define RINGO_ALGO_COMPACTCSR_SWITCH_H_

namespace ringo {
namespace compactcsr {

// True = newly built base CSRs are varint-compressed; false (default
// unless env RINGO_COMPACT_CSR is "on"/"1"/"true") = plain arrays. Reads
// are relaxed atomics, safe from any thread; toggle only between builds.
bool Enabled();
void SetEnabled(bool on);

// RAII toggle for tests and ablations.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace compactcsr
}  // namespace ringo

#endif  // RINGO_ALGO_COMPACTCSR_SWITCH_H_
