// Community detection: asynchronous label propagation plus Newman
// modularity scoring of any partition. Both read AlgoView CSR spans by
// default; csr::SetEnabled(false) selects the legacy hash-adjacency
// oracle. Modularity counts a self-loop as 2 in both its endpoint's degree
// and the community-internal sum (A_uu = 2), matching Louvain's
// aggregation convention.
#ifndef RINGO_ALGO_COMMUNITY_H_
#define RINGO_ALGO_COMMUNITY_H_

#include "algo/algo_defs.h"
#include "graph/undirected_graph.h"

namespace ringo {

// Label propagation (Raghavan et al.): each node repeatedly adopts the
// most frequent label among its neighbors (ties broken by smallest label).
// Deterministic for a given seed (node visiting order is shuffled per
// round). Returns dense community labels, (id, community), ascending by
// id, numbered by first occurrence.
NodeInts LabelPropagation(const UndirectedGraph& g, int max_rounds = 100,
                          uint64_t seed = 1);

// Newman modularity Q of a partition (labels as produced above). Q in
// [-0.5, 1]; higher = stronger community structure.
double Modularity(const UndirectedGraph& g, const NodeInts& labels);

}  // namespace ringo

#endif  // RINGO_ALGO_COMMUNITY_H_
