// Neighborhood similarity measures (link-prediction scores): common
// neighbors, Jaccard, Adamic–Adar.
#ifndef RINGO_ALGO_SIMILARITY_H_
#define RINGO_ALGO_SIMILARITY_H_

#include "graph/undirected_graph.h"

namespace ringo {

// |N(u) ∩ N(v)| over neighbors excluding u and v themselves. Missing nodes
// score 0.
int64_t CommonNeighbors(const UndirectedGraph& g, NodeId u, NodeId v);

// |N(u) ∩ N(v)| / |N(u) ∪ N(v)| (0 when the union is empty).
double JaccardSimilarity(const UndirectedGraph& g, NodeId u, NodeId v);

// Adamic–Adar: sum over common neighbors w of 1/log(deg(w)); neighbors of
// degree < 2 are skipped (log would be <= 0).
double AdamicAdar(const UndirectedGraph& g, NodeId u, NodeId v);

}  // namespace ringo

#endif  // RINGO_ALGO_SIMILARITY_H_
