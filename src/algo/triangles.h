// Undirected triangle counting and clustering coefficients (Table 3's
// second parallel benchmark). The paper notes triangle counting is directly
// related to relational joins; here it is a merge-intersection of sorted
// adjacency vectors — exactly what the sorted-adjacency graph
// representation (§2.2) is good at. The intersections run over AlgoView
// CSR spans by default (self-loops skipped inline; they never close a
// triangle); csr::SetEnabled(false) selects the legacy hash-adjacency
// oracle used by the parity suite.
#ifndef RINGO_ALGO_TRIANGLES_H_
#define RINGO_ALGO_TRIANGLES_H_

#include "algo/algo_defs.h"
#include "graph/undirected_graph.h"

namespace ringo {

// Total number of distinct triangles {u, v, w}. Self-loops are ignored.
// Sequential reference implementation.
int64_t TriangleCount(const UndirectedGraph& g);

// OpenMP-parallel triangle count using degree-ordered forward adjacency
// (each triangle found exactly once, from its lowest-order vertex).
int64_t ParallelTriangleCount(const UndirectedGraph& g);

// Per-node participation: (id, #triangles through the node), ascending.
NodeInts NodeTriangles(const UndirectedGraph& g);

// Per-node local clustering coefficient: triangles(u) / C(deg(u), 2)
// (0 when deg < 2; self-loops excluded from the degree).
NodeValues LocalClusteringCoefficients(const UndirectedGraph& g);

// Average of the local clustering coefficients over all nodes.
double AverageClusteringCoefficient(const UndirectedGraph& g);

// Global clustering coefficient: 3 * triangles / open+closed wedges.
double GlobalClusteringCoefficient(const UndirectedGraph& g);

}  // namespace ringo

#endif  // RINGO_ALGO_TRIANGLES_H_
