#include "algo/bfs.h"

#include <algorithm>
#include <deque>

#include "storage/flat_hash_map.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Generic BFS: calls visit(node, dist) for every reached node; expand(node)
// yields neighbor ranges to follow.
template <typename Expand>
void RunBfs(NodeId src, const Expand& expand,
            FlatHashMap<NodeId, int64_t>* dist) {
  std::deque<NodeId> queue;
  dist->Insert(src, 0);
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const int64_t du = *dist->Find(u);
    expand(u, [&](NodeId v) {
      if (dist->Insert(v, du + 1).second) queue.push_back(v);
    });
  }
}

NodeInts SortedPairs(const FlatHashMap<NodeId, int64_t>& dist) {
  NodeInts out;
  out.reserve(dist.size());
  dist.ForEach([&](NodeId id, const int64_t& d) { out.emplace_back(id, d); });
  std::sort(out.begin(), out.end());
  return out;
}

// Neighbor expansion for a directed graph under a BfsDir policy.
struct DirectedExpand {
  const DirectedGraph* g;
  BfsDir dir;

  template <typename Visit>
  void operator()(NodeId u, const Visit& visit) const {
    const DirectedGraph::NodeData* nd = g->GetNode(u);
    if (dir == BfsDir::kOut || dir == BfsDir::kBoth) {
      for (NodeId v : nd->out) visit(v);
    }
    if (dir == BfsDir::kIn || dir == BfsDir::kBoth) {
      for (NodeId v : nd->in) visit(v);
    }
  }
};

struct UndirectedExpand {
  const UndirectedGraph* g;

  template <typename Visit>
  void operator()(NodeId u, const Visit& visit) const {
    for (NodeId v : g->GetNode(u)->nbrs) visit(v);
  }
};

}  // namespace

NodeInts BfsDistances(const DirectedGraph& g, NodeId src, BfsDir dir) {
  if (!g.HasNode(src)) return {};
  trace::Span span("Algo/BfsDistances");
  span.AddAttr("nodes", g.NumNodes());
  FlatHashMap<NodeId, int64_t> dist;
  RunBfs(src, DirectedExpand{&g, dir}, &dist);
  span.AddAttr("reached", dist.size());
  return SortedPairs(dist);
}

NodeInts BfsDistances(const UndirectedGraph& g, NodeId src) {
  if (!g.HasNode(src)) return {};
  trace::Span span("Algo/BfsDistances");
  span.AddAttr("nodes", g.NumNodes());
  FlatHashMap<NodeId, int64_t> dist;
  RunBfs(src, UndirectedExpand{&g}, &dist);
  span.AddAttr("reached", dist.size());
  return SortedPairs(dist);
}

std::vector<NodeId> BfsReachable(const DirectedGraph& g, NodeId src,
                                 BfsDir dir) {
  std::vector<NodeId> out;
  for (const auto& [id, d] : BfsDistances(g, src, dir)) out.push_back(id);
  return out;
}

std::vector<NodeId> BfsReachable(const UndirectedGraph& g, NodeId src) {
  std::vector<NodeId> out;
  for (const auto& [id, d] : BfsDistances(g, src)) out.push_back(id);
  return out;
}

std::vector<NodeId> ShortestPath(const DirectedGraph& g, NodeId src,
                                 NodeId dst, BfsDir dir) {
  if (!g.HasNode(src) || !g.HasNode(dst)) return {};
  FlatHashMap<NodeId, NodeId> parent;
  FlatHashMap<NodeId, int64_t> dist;
  std::deque<NodeId> queue;
  dist.Insert(src, 0);
  queue.push_back(src);
  const DirectedExpand expand{&g, dir};
  bool found = (src == dst);
  while (!queue.empty() && !found) {
    const NodeId u = queue.front();
    queue.pop_front();
    const int64_t du = *dist.Find(u);
    expand(u, [&](NodeId v) {
      if (dist.Insert(v, du + 1).second) {
        parent.Insert(v, u);
        if (v == dst) found = true;
        queue.push_back(v);
      }
    });
  }
  if (!found) return {};
  std::vector<NodeId> path{dst};
  while (path.back() != src) path.push_back(*parent.Find(path.back()));
  std::reverse(path.begin(), path.end());
  return path;
}

int64_t BfsDepth(const DirectedGraph& g, NodeId src, BfsDir dir) {
  if (!g.HasNode(src)) return -1;
  int64_t depth = 0;
  for (const auto& [id, d] : BfsDistances(g, src, dir)) {
    depth = std::max(depth, d);
  }
  return depth;
}

int64_t BfsDepth(const UndirectedGraph& g, NodeId src) {
  if (!g.HasNode(src)) return -1;
  int64_t depth = 0;
  for (const auto& [id, d] : BfsDistances(g, src)) depth = std::max(depth, d);
  return depth;
}

namespace {

// Shared iterative DFS skeleton; emits preorder or postorder.
std::vector<NodeId> DfsOrder(const DirectedGraph& g, NodeId src,
                             bool preorder) {
  if (!g.HasNode(src)) return {};
  std::vector<NodeId> order;
  FlatHashSet<NodeId> visited;
  // Frame: (node, index of next child to expand).
  std::vector<std::pair<NodeId, size_t>> stack{{src, 0}};
  visited.Insert(src);
  if (preorder) order.push_back(src);
  while (!stack.empty()) {
    auto& [u, child] = stack.back();
    const auto& out = g.GetNode(u)->out;  // Sorted: ascending-id children.
    bool descended = false;
    while (child < out.size()) {
      const NodeId v = out[child++];
      if (visited.Insert(v)) {
        if (preorder) order.push_back(v);
        stack.emplace_back(v, 0);
        descended = true;
        break;
      }
    }
    if (!descended && child >= g.GetNode(u)->out.size()) {
      if (!preorder) order.push_back(u);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::vector<NodeId> DfsPreorder(const DirectedGraph& g, NodeId src) {
  return DfsOrder(g, src, /*preorder=*/true);
}

std::vector<NodeId> DfsPostorder(const DirectedGraph& g, NodeId src) {
  return DfsOrder(g, src, /*preorder=*/false);
}

}  // namespace ringo
