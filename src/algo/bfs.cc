#include "algo/bfs.h"

#include <algorithm>

#include "algo/algo_view.h"
#include "algo/bfs_engine.h"
#include "storage/flat_hash_map.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Compacts a dense engine result into the public (id, hops) pairs sorted by
// id: blocked count + prefix + fill, sequential below the engine's own
// parallel granularity.
NodeInts DensePairs(const AlgoView& view, const bfs::DenseBfs& r) {
  const int64_t n = view.NumNodes();
  NodeInts out;
  if (r.reached < (1 << 12) || NumThreads() <= 1) {
    out.reserve(r.reached);
    for (int64_t i = 0; i < n; ++i) {
      if (r.dist[i] >= 0) out.emplace_back(view.IdOf(i), r.dist[i]);
    }
    return out;
  }
  constexpr int64_t kBlock = 1 << 12;
  const int64_t nblocks = (n + kBlock - 1) / kBlock;
  std::vector<int64_t> offsets(nblocks + 1, 0);
  ParallelFor(0, nblocks, [&](int64_t b) {
    const int64_t lo = b * kBlock;
    const int64_t hi = std::min(n, lo + kBlock);
    int64_t c = 0;
    for (int64_t i = lo; i < hi; ++i) c += (r.dist[i] >= 0);
    offsets[b] = c;
  });
  const int64_t total = ExclusivePrefixSum(offsets);
  out.resize(total);
  ParallelFor(0, nblocks, [&](int64_t b) {
    const int64_t lo = b * kBlock;
    const int64_t hi = std::min(n, lo + kBlock);
    int64_t pos = offsets[b];
    for (int64_t i = lo; i < hi; ++i) {
      if (r.dist[i] >= 0) out[pos++] = {view.IdOf(i), r.dist[i]};
    }
  });
  return out;
}

}  // namespace

NodeInts BfsDistances(const DirectedGraph& g, NodeId src, BfsDir dir) {
  if (!g.HasNode(src)) return {};
  trace::Span span("Algo/BfsDistances");
  span.AddAttr("nodes", g.NumNodes());
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const bfs::DenseBfs r = bfs::Run(*view, view->IndexOf(src), dir);
  span.AddAttr("reached", r.reached);
  span.AddAttr("top_down_steps", r.top_down_steps);
  span.AddAttr("bottom_up_steps", r.bottom_up_steps);
  return DensePairs(*view, r);
}

NodeInts BfsDistances(const UndirectedGraph& g, NodeId src) {
  if (!g.HasNode(src)) return {};
  trace::Span span("Algo/BfsDistances");
  span.AddAttr("nodes", g.NumNodes());
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const bfs::DenseBfs r = bfs::Run(*view, view->IndexOf(src), BfsDir::kOut);
  span.AddAttr("reached", r.reached);
  span.AddAttr("top_down_steps", r.top_down_steps);
  span.AddAttr("bottom_up_steps", r.bottom_up_steps);
  return DensePairs(*view, r);
}

std::vector<NodeId> BfsReachable(const DirectedGraph& g, NodeId src,
                                 BfsDir dir) {
  std::vector<NodeId> out;
  for (const auto& [id, d] : BfsDistances(g, src, dir)) out.push_back(id);
  return out;
}

std::vector<NodeId> BfsReachable(const UndirectedGraph& g, NodeId src) {
  std::vector<NodeId> out;
  for (const auto& [id, d] : BfsDistances(g, src)) out.push_back(id);
  return out;
}

std::vector<NodeId> ShortestPath(const DirectedGraph& g, NodeId src,
                                 NodeId dst, BfsDir dir) {
  if (!g.HasNode(src) || !g.HasNode(dst)) return {};
  if (src == dst) return {src};
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  const int64_t src_i = view->IndexOf(src);
  const int64_t dst_i = view->IndexOf(dst);
  bfs::Options opts;
  opts.need_parents = true;
  opts.stop_at = dst_i;
  const bfs::DenseBfs r = bfs::Run(*view, src_i, dir, opts);
  if (r.dist[dst_i] < 0) return {};
  // Walking min-id parents yields the same path for every thread count.
  std::vector<NodeId> path{dst};
  int64_t cur = dst_i;
  while (cur != src_i) {
    cur = r.parent[cur];
    path.push_back(view->IdOf(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int64_t BfsDepth(const DirectedGraph& g, NodeId src, BfsDir dir) {
  if (!g.HasNode(src)) return -1;
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  return bfs::Run(*view, view->IndexOf(src), dir).max_depth;
}

int64_t BfsDepth(const UndirectedGraph& g, NodeId src) {
  if (!g.HasNode(src)) return -1;
  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
  return bfs::Run(*view, view->IndexOf(src), BfsDir::kOut).max_depth;
}

namespace {

// Shared iterative DFS skeleton; emits preorder or postorder. Each frame
// caches its node's out-vector (NodeData pointers are stable while the
// graph is const), so the node hash lookup happens once per push instead
// of twice per loop iteration.
std::vector<NodeId> DfsOrder(const DirectedGraph& g, NodeId src,
                             bool preorder) {
  if (!g.HasNode(src)) return {};
  std::vector<NodeId> order;
  FlatHashSet<NodeId> visited;
  struct Frame {
    NodeId u;
    const std::vector<NodeId>* out;  // Sorted: ascending-id children.
    size_t child;
  };
  std::vector<Frame> stack{{src, &g.GetNode(src)->out, 0}};
  visited.Insert(src);
  if (preorder) order.push_back(src);
  while (!stack.empty()) {
    Frame& f = stack.back();
    bool descended = false;
    while (f.child < f.out->size()) {
      const NodeId v = (*f.out)[f.child++];
      if (visited.Insert(v)) {
        if (preorder) order.push_back(v);
        stack.push_back({v, &g.GetNode(v)->out, 0});
        descended = true;
        break;
      }
    }
    if (!descended) {
      if (!preorder) order.push_back(f.u);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

std::vector<NodeId> DfsPreorder(const DirectedGraph& g, NodeId src) {
  return DfsOrder(g, src, /*preorder=*/true);
}

std::vector<NodeId> DfsPostorder(const DirectedGraph& g, NodeId src) {
  return DfsOrder(g, src, /*preorder=*/false);
}

}  // namespace ringo
