#include "algo/node_index.h"

#include "util/radix_sort.h"

namespace ringo {

NodeIndex NodeIndex::FromIds(std::vector<NodeId> ids) {
  NodeIndex ni;
  RadixSortI64(ids);
  ni.ids_ = std::move(ids);
  const int64_t n = ni.size();
  if (n == 0) {
    ni.dense_lookup_ = true;
    return ni;
  }
  const uint64_t span = static_cast<uint64_t>(ni.ids_.back()) -
                        static_cast<uint64_t>(ni.ids_.front());
  if (span < static_cast<uint64_t>(4 * n + 16)) {
    ni.dense_lookup_ = true;
    ni.base_ = ni.ids_.front();
    ni.dense_.assign(span + 1, -1);
    ParallelFor(0, n, [&](int64_t i) {
      ni.dense_[ni.ids_[i] - ni.base_] = i;
    });
  } else {
    ni.index_.Reserve(n);
    for (int64_t i = 0; i < n; ++i) ni.index_.Insert(ni.ids_[i], i);
  }
  return ni;
}

}  // namespace ringo
