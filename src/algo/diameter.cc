#include "algo/diameter.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "algo/bfs.h"
#include "algo/centrality.h"
#include "util/rng.h"

namespace ringo {

DiameterEstimate EstimateDiameter(const UndirectedGraph& g, int64_t samples,
                                  uint64_t seed) {
  DiameterEstimate est;
  const int64_t n = g.NumNodes();
  if (n == 0) return est;
  std::vector<NodeId> ids = g.SortedNodeIds();
  samples = std::min(samples, n);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(ids[i], ids[rng.UniformInt(i, n - 1)]);
  }

  // Histogram of pairwise distances from the pivots.
  std::vector<int64_t> hist;
  int64_t pairs = 0;
  double dist_sum = 0;
  for (int64_t i = 0; i < samples; ++i) {
    for (const auto& [v, d] : BfsDistances(g, ids[i])) {
      if (d == 0) continue;
      if (d >= static_cast<int64_t>(hist.size())) hist.resize(d + 1, 0);
      ++hist[d];
      ++pairs;
      dist_sum += static_cast<double>(d);
      est.diameter = std::max(est.diameter, d);
    }
  }
  if (pairs == 0) return est;
  est.avg_distance = dist_sum / static_cast<double>(pairs);

  // Effective diameter: smallest d* (linearly interpolated) such that 90%
  // of reachable pairs are within distance d*.
  const double target = 0.9 * static_cast<double>(pairs);
  int64_t cum = 0;
  for (size_t d = 1; d < hist.size(); ++d) {
    if (cum + hist[d] >= target) {
      const double need = target - static_cast<double>(cum);
      est.effective_diameter =
          static_cast<double>(d - 1) + need / static_cast<double>(hist[d]);
      return est;
    }
    cum += hist[d];
  }
  est.effective_diameter = static_cast<double>(est.diameter);
  return est;
}

int64_t ExactDiameter(const UndirectedGraph& g) {
  int64_t best = 0;
  for (const auto& [id, e] : Eccentricities(g)) best = std::max(best, e);
  return best;
}

}  // namespace ringo
