#include "algo/diameter.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "algo/algo_view.h"
#include "algo/bfs_engine.h"
#include "algo/centrality.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ringo {

DiameterEstimate EstimateDiameter(const UndirectedGraph& g, int64_t samples,
                                  uint64_t seed) {
  DiameterEstimate est;
  const int64_t n = g.NumNodes();
  if (n == 0) return est;
  trace::Span span("Algo/EstimateDiameter");
  span.AddAttr("nodes", n);
  // Pivot sample: partial Fisher-Yates over ascending ids — a pure function
  // of (node set, seed), independent of thread count.
  std::vector<NodeId> ids = g.SortedNodeIds();
  samples = std::min(samples, n);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(ids[i], ids[rng.UniformInt(i, n - 1)]);
  }
  span.AddAttr("samples", samples);

  const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);

  // Pivot BFS runs in parallel, one sequential walk per pivot. Each pivot
  // accumulates its own histogram / pair count / distance sum over vertices
  // in ascending dense (= ascending id) order, and the partials merge in
  // pivot order below — a fixed association, so DiameterEstimate (doubles
  // included) is bit-identical for every thread count.
  struct PivotStats {
    std::vector<int64_t> hist;
    int64_t pairs = 0;
    double dist_sum = 0;
    int64_t ecc = 0;
  };
  std::vector<PivotStats> per(samples);
  std::vector<std::vector<int64_t>> scratch(
      std::max(omp_get_max_threads(), 1));
  auto pivot_bfs = [&](int64_t i) {
    std::vector<int64_t>& dist = scratch[omp_get_thread_num()];
    bfs::SequentialDistances(*view, view->IndexOf(ids[i]), BfsDir::kOut,
                             &dist);
    PivotStats& ps = per[i];
    const int64_t nv = view->NumNodes();
    for (int64_t v = 0; v < nv; ++v) {
      const int64_t d = dist[v];
      if (d <= 0) continue;
      if (d >= static_cast<int64_t>(ps.hist.size())) ps.hist.resize(d + 1, 0);
      ++ps.hist[d];
      ++ps.pairs;
      ps.dist_sum += static_cast<double>(d);
      ps.ecc = std::max(ps.ecc, d);
    }
  };
  if (samples > 1 && NumThreads() > 1) {
    ParallelForDynamic(0, samples, pivot_bfs, /*chunk=*/1);
  } else {
    for (int64_t i = 0; i < samples; ++i) pivot_bfs(i);
  }

  std::vector<int64_t> hist;
  int64_t pairs = 0;
  double dist_sum = 0;
  for (int64_t i = 0; i < samples; ++i) {
    const PivotStats& ps = per[i];
    if (ps.hist.size() > hist.size()) hist.resize(ps.hist.size(), 0);
    for (size_t d = 0; d < ps.hist.size(); ++d) hist[d] += ps.hist[d];
    pairs += ps.pairs;
    dist_sum += ps.dist_sum;
    est.diameter = std::max(est.diameter, ps.ecc);
  }
  if (pairs == 0) return est;
  est.avg_distance = dist_sum / static_cast<double>(pairs);

  // Effective diameter: smallest d* (linearly interpolated) such that 90%
  // of reachable pairs are within distance d*.
  const double target = 0.9 * static_cast<double>(pairs);
  int64_t cum = 0;
  for (size_t d = 1; d < hist.size(); ++d) {
    if (cum + hist[d] >= target) {
      const double need = target - static_cast<double>(cum);
      est.effective_diameter =
          static_cast<double>(d - 1) + need / static_cast<double>(hist[d]);
      return est;
    }
    cum += hist[d];
  }
  est.effective_diameter = static_cast<double>(est.diameter);
  return est;
}

int64_t ExactDiameter(const UndirectedGraph& g) {
  int64_t best = 0;
  for (const auto& [id, e] : Eccentricities(g)) best = std::max(best, e);
  return best;
}

}  // namespace ringo
