// AlgoView: a read-optimized CSR snapshot of a dynamic graph, cached on the
// graph behind its mutation stamp (DESIGN.md §9, §11, §12).
//
// The dynamic representations (hash table of nodes, sorted adjacency
// vectors) pay a hash probe per edge access; traversal cost is dominated by
// that machinery, not the algorithm. AlgoView materializes the graph once
// into a NodeIndex (ascending-id dense numbering) plus offset+neighbor
// arrays, so every traversal-style algorithm runs over flat int64 arrays.
// Repeated analytics calls on an unmodified graph reuse the cached snapshot
// (counter "algo_view/hit").
//
// Since §11 the snapshot is two-part: an immutable shared *base* CSR plus a
// per-direction *patch* overlay holding freshly merged neighbor runs for
// the nodes touched by recent ApplyEdgeBatch calls. When a mutation was
// batched and the graph's delta journal covers the stamp gap, Of() patches
// the stale snapshot forward in O(batch + touched nodes) instead of paying
// the O(V + E) rebuild ("algo_view/delta_apply", with "algo_view/
// stale_patch" counting the stale snapshots refreshed that way); delete
// tombstones from the journal annihilate base entries during the per-node
// merge, so reads stay contiguous ascending spans. Batches that *create*
// nodes stay on the delta path too: created ids always sort above every
// pre-existing id (the graph checks its watermark before journaling), so
// the patched view carries an extended NodeIndex whose new rows simply
// append after the base rows. Once the patched-arc fraction crosses
// deltacsr::CompactionFraction, the refresh folds everything into a fresh
// dense base ("algo_view/compact"). Non-journalable mutations (single-edge
// calls, node deletes, table splicing) force a full rebuild
// ("algo_view/build"); "algo_view/invalidate" counts only the stale
// snapshots *discarded* by such a rebuild or a compaction — a delta-patched
// refresh is not an invalidation. deltacsr::SetEnabled(false) disables
// patching entirely — the parity oracle.
//
// Layout invariants (identical for base spans and patch runs):
//   * dense index i corresponds to the i-th smallest node id;
//   * Out(i)/In(i) are ascending spans of dense indices (the adjacency
//     vectors are id-sorted and the id->index map is monotone);
//   * undirected graphs store one neighbor array; In(i) == Out(i).
// Delta-patched views share the base arrays of the snapshot they were
// patched from, and — unless the batch created nodes — its NodeIndex too
// (&node_index() is stable across edge-only patches; a node-creating patch
// installs an extended index that is then shared by further patches).
//
// Thread-safety (DESIGN.md §12): Of() is safe to call from any number of
// threads concurrently with each other AND with one writer mutating the
// graph. The cached (view, stamp) pair lives in the graph's SnapshotCache;
// refreshes are single-flight (a thundering herd of cold readers triggers
// exactly one build — the counters above stay exact) and the flight holds
// the graph's structure lock in shared mode, excluding writers for the
// duration of the build. A returned view is immutable and remains valid as
// long as the caller holds the shared_ptr, no matter how the graph mutates.
#ifndef RINGO_ALGO_ALGO_VIEW_H_
#define RINGO_ALGO_ALGO_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algo/compact_csr.h"
#include "algo/node_index.h"
#include "graph/delta_journal.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

// What Out()/In() hand back: a span-shaped view over a neighbor run that
// optionally owns a ref on the pooled scratch buffer the run was decoded
// into (compressed base layout, DESIGN.md §14). On the plain path the ref
// is null and this is just a pointer+length. Converts implicitly to
// std::span<const int64_t> for span-typed helpers — but such a raw span is
// only valid while some NbrSpan over the same run is alive, so bind
// `auto`/NbrSpan, not std::span, when holding a run across further
// Out()/In() calls.
class NbrSpan {
 public:
  using value_type = int64_t;

  NbrSpan() = default;
  NbrSpan(std::span<const int64_t> s) : p_(s.data()), n_(s.size()) {}
  NbrSpan(const int64_t* p, size_t n) : p_(p), n_(n) {}
  NbrSpan(const int64_t* p, size_t n, compactcsr::BufRef buf)
      : buf_(std::move(buf)), p_(p), n_(n) {}

  operator std::span<const int64_t>() const { return {p_, n_}; }
  const int64_t* begin() const { return p_; }
  const int64_t* end() const { return p_ + n_; }
  const int64_t* data() const { return p_; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  int64_t operator[](size_t k) const { return p_[k]; }
  int64_t front() const { return p_[0]; }
  int64_t back() const { return p_[n_ - 1]; }

 private:
  compactcsr::BufRef buf_;
  const int64_t* p_ = nullptr;
  size_t n_ = 0;
};

class AlgoView {
 public:
  // Cached accessors: return a snapshot matching the graph's current
  // mutation stamp — reusing, delta-patching, compacting, or rebuilding the
  // cached one as the journal allows. Safe under concurrent readers + one
  // writer (see the header comment).
  static std::shared_ptr<const AlgoView> Of(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Of(const UndirectedGraph& g);

  // Uncached full builds (benchmarks, tests). Not synchronized against
  // writers — quiescent graphs only.
  static std::shared_ptr<const AlgoView> Build(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Build(const UndirectedGraph& g);

  // Replays net edge ops (insert/delete) plus created node ids onto `prev`,
  // producing a patched view sharing prev's base. Every id in
  // `new_node_ids` must exceed every id prev knows (ascending — the
  // journal's watermark rule); edge ops may reference both old and new ids.
  // Returns nullptr when the projected patched-arc fraction crosses
  // `compact_fraction` or the watermark precondition fails — the caller
  // should compact (full rebuild) instead. Exposed for tests; Of() is the
  // normal entry point.
  static std::shared_ptr<const AlgoView> ApplyDelta(
      const std::shared_ptr<const AlgoView>& prev, std::vector<EdgeOp> ops,
      double compact_fraction, std::vector<NodeId> new_node_ids = {});

  bool directed() const { return directed_; }
  int64_t NumNodes() const { return node_index().size(); }
  // Stored arcs: directed edges once per direction array; undirected edges
  // twice (self-loops once), matching the adjacency vectors.
  int64_t NumOutArcs() const { return num_out_arcs_; }
  int64_t NumInArcs() const { return directed_ ? num_in_arcs_ : num_out_arcs_; }

  // The extended index when the view carries delta-created nodes, else the
  // base index. New rows append after base rows, so dense indices are
  // stable across patches.
  const NodeIndex& node_index() const {
    return ext_ni_ != nullptr ? *ext_ni_ : base_->ni;
  }
  int64_t IndexOf(NodeId id) const { return node_index().IndexOf(id); }
  NodeId IdOf(int64_t index) const { return node_index().IdOf(index); }

  // The graph mutation stamp this snapshot reflects; 0 when the view was
  // built outside the cache (Build/ApplyDelta called directly). Atomic
  // because a canceled-out refresh republishes the same view object at a
  // newer stamp while readers hold it.
  uint64_t snapshot_stamp() const {
    return snapshot_stamp_.load(std::memory_order_relaxed);
  }

  // Ascending spans of dense neighbor indices (patch run if the node was
  // touched by a replayed batch, base span otherwise; delta-created nodes
  // with no patched adjacency read as empty). On a compressed base the run
  // is decoded into pooled thread-local scratch kept alive by the returned
  // NbrSpan's buffer ref.
  NbrSpan Out(int64_t i) const {
    if (static_cast<size_t>(i) < out_patch_.slot.size()) {
      const int32_t s = out_patch_.slot[i];
      if (s >= 0) return out_patch_.Run(s);
    }
    if (i >= base_nodes_) return {};
    if (base_->out_c.has()) {
      return DecodeBase(base_->out_c, base_->out_offsets, i);
    }
    return {base_->out_nbrs.data() + base_->out_offsets[i],
            static_cast<size_t>(base_->out_offsets[i + 1] -
                                base_->out_offsets[i])};
  }
  NbrSpan In(int64_t i) const {
    if (!directed_) return Out(i);
    if (static_cast<size_t>(i) < in_patch_.slot.size()) {
      const int32_t s = in_patch_.slot[i];
      if (s >= 0) return in_patch_.Run(s);
    }
    if (i >= base_nodes_) return {};
    if (base_->in_c.has()) {
      return DecodeBase(base_->in_c, base_->in_offsets, i);
    }
    return {base_->in_nbrs.data() + base_->in_offsets[i],
            static_cast<size_t>(base_->in_offsets[i + 1] -
                                base_->in_offsets[i])};
  }
  // Decode-and-consume iteration: calls fn(u) for each neighbor of i in
  // ascending order — the same values Out(i)/In(i) would yield, in the same
  // order. On a compressed base this fuses the varint decode into the
  // caller's loop, skipping the pooled scratch buffer entirely; sequential
  // whole-graph scans (PageRank's pull is the canonical one) should prefer
  // this over Out()/In(), whose per-call buffer round-trip dominates
  // short runs. Kernels that must hold a run while visiting another
  // (triangle intersection) still need the span form.
  template <typename Fn>
  void ForEachOut(int64_t i, Fn&& fn) const {
    if (static_cast<size_t>(i) < out_patch_.slot.size()) {
      const int32_t s = out_patch_.slot[i];
      if (s >= 0) {
        for (const int64_t u : out_patch_.Run(s)) fn(u);
        return;
      }
    }
    if (i >= base_nodes_) return;
    if (base_->out_c.has()) {
      compactcsr::DecodeRunForEach(
          base_->out_c.bytes.data() + base_->out_c.byte_offsets[i],
          base_->out_offsets[i + 1] - base_->out_offsets[i], fn);
      return;
    }
    const int64_t* p = base_->out_nbrs.data();
    for (int64_t k = base_->out_offsets[i]; k < base_->out_offsets[i + 1];
         ++k) {
      fn(p[k]);
    }
  }
  template <typename Fn>
  void ForEachIn(int64_t i, Fn&& fn) const {
    if (!directed_) {
      ForEachOut(i, fn);
      return;
    }
    if (static_cast<size_t>(i) < in_patch_.slot.size()) {
      const int32_t s = in_patch_.slot[i];
      if (s >= 0) {
        for (const int64_t u : in_patch_.Run(s)) fn(u);
        return;
      }
    }
    if (i >= base_nodes_) return;
    if (base_->in_c.has()) {
      compactcsr::DecodeRunForEach(
          base_->in_c.bytes.data() + base_->in_c.byte_offsets[i],
          base_->in_offsets[i + 1] - base_->in_offsets[i], fn);
      return;
    }
    const int64_t* p = base_->in_nbrs.data();
    for (int64_t k = base_->in_offsets[i]; k < base_->in_offsets[i + 1];
         ++k) {
      fn(p[k]);
    }
  }

  // Degrees are O(1) on every layout: element offsets stay plain even when
  // the neighbor payload is compressed (PageRank divides by out-degree per
  // node per iteration — a decode here would dominate the kernel).
  int64_t OutDegree(int64_t i) const {
    if (static_cast<size_t>(i) < out_patch_.slot.size()) {
      const int32_t s = out_patch_.slot[i];
      if (s >= 0) return out_patch_.offsets[s + 1] - out_patch_.offsets[s];
    }
    if (i >= base_nodes_) return 0;
    return base_->out_offsets[i + 1] - base_->out_offsets[i];
  }
  int64_t InDegree(int64_t i) const {
    if (!directed_) return OutDegree(i);
    if (static_cast<size_t>(i) < in_patch_.slot.size()) {
      const int32_t s = in_patch_.slot[i];
      if (s >= 0) return in_patch_.offsets[s + 1] - in_patch_.offsets[s];
    }
    if (i >= base_nodes_) return 0;
    return base_->in_offsets[i + 1] - base_->in_offsets[i];
  }

  // True when the base neighbor payload is varint-compressed (the layout is
  // frozen at build time from compactcsr::Enabled()).
  bool compressed() const { return base_->out_c.has(); }

  // Bytes held by this snapshot: base arrays (plain or compressed), patch
  // overlays, and the extended index if any. Feeds the mem/graph_bytes and
  // mem/bytes_per_edge gauges at build time.
  int64_t MemoryUsageBytes() const;

  // ---- Delta introspection (gauges, tests, bench tables). ----
  // Number of nodes whose reads are served from patch runs.
  int64_t PatchedNodes() const {
    return static_cast<int64_t>(out_patch_.nodes.size() +
                                (directed_ ? in_patch_.nodes.size() : 0));
  }
  // Arcs served from patch runs.
  int64_t PatchedArcs() const {
    return static_cast<int64_t>(out_patch_.arena.size() +
                                (directed_ ? in_patch_.arena.size() : 0));
  }
  // Fraction of all stored arcs served from patch runs (0 for a fresh
  // base). Node-count-based when the view has no arcs at all.
  double DeltaFraction() const {
    const int64_t total = NumOutArcs() + (directed_ ? NumInArcs() : 0);
    return total == 0 ? 0.0
                      : static_cast<double>(PatchedArcs()) /
                            static_cast<double>(total);
  }

 private:
  // The immutable dense part, shared between a snapshot and every view
  // patched forward from it. The element offsets are always plain; when the
  // compact layout is on, the *_nbrs payloads are replaced by varint delta
  // streams in *_c (the vectors are left empty).
  struct BaseCsr {
    NodeIndex ni;
    std::vector<int64_t> out_offsets;  // n+1 entries.
    std::vector<int64_t> out_nbrs;
    std::vector<int64_t> in_offsets;   // Empty for undirected views.
    std::vector<int64_t> in_nbrs;
    compactcsr::CompressedDir out_c;
    compactcsr::CompressedDir in_c;

    int64_t MemoryUsageBytes() const;
  };

  // Patch overlay for one direction: `nodes` lists the patched dense
  // indices ascending, `slot[i]` maps a dense index to its run (or -1 =
  // base), and runs live back-to-back in `arena` delimited by `offsets`.
  // slot may be shorter than NumNodes() when later node-only batches grew
  // the index without touching this direction; Out/In guard the lookup.
  struct DirPatch {
    std::vector<int32_t> slot;     // Empty when nothing is patched.
    std::vector<int64_t> nodes;    // Ascending patched dense indices.
    std::vector<int64_t> offsets;  // nodes.size() + 1 entries.
    std::vector<int64_t> arena;    // Merged ascending runs.

    std::span<const int64_t> Run(int32_t s) const {
      return {arena.data() + offsets[s],
              static_cast<size_t>(offsets[s + 1] - offsets[s])};
    }
  };

  AlgoView() = default;

  // Refreshes mem/graph_bytes and mem/bytes_per_edge from this snapshot.
  void PublishMemGauges() const;

  void set_snapshot_stamp(uint64_t s) const {
    snapshot_stamp_.store(s, std::memory_order_relaxed);
  }

  // Decodes base run i of a compressed direction into pooled scratch.
  static NbrSpan DecodeBase(const compactcsr::CompressedDir& d,
                            const std::vector<int64_t>& offsets, int64_t i);

  // Full CSR materialization without counters (Build and the compaction
  // path wrap it with the right one).
  template <typename Graph>
  static std::shared_ptr<AlgoView> BuildFull(const Graph& g);
  // Rewrites one direction's patch overlay: union of previously patched
  // nodes and the nodes touched by `ops` (dense, sorted by owner), each
  // merged/copied into a fresh arena in parallel.
  static void PatchDirection(const AlgoView& prev, bool in_dir,
                             const std::vector<EdgeOp>& ops, AlgoView* next);
  template <typename Graph>
  static std::shared_ptr<const AlgoView> CachedOf(const Graph& g);

  bool directed_ = true;
  std::shared_ptr<const BaseCsr> base_;
  // Set when delta batches created nodes since the base was built: the base
  // index extended with the new ids (which all sort after the old ones).
  std::shared_ptr<const NodeIndex> ext_ni_;
  // Rows the base arrays cover; dense indices >= base_nodes_ are
  // delta-created and have no base span.
  int64_t base_nodes_ = 0;
  DirPatch out_patch_;
  DirPatch in_patch_;
  int64_t num_out_arcs_ = 0;
  int64_t num_in_arcs_ = 0;
  mutable std::atomic<uint64_t> snapshot_stamp_{0};
};

}  // namespace ringo

#endif  // RINGO_ALGO_ALGO_VIEW_H_
