// AlgoView: a read-optimized CSR snapshot of a dynamic graph, cached on the
// graph behind its mutation stamp (DESIGN.md §9, §11).
//
// The dynamic representations (hash table of nodes, sorted adjacency
// vectors) pay a hash probe per edge access; traversal cost is dominated by
// that machinery, not the algorithm. AlgoView materializes the graph once
// into a NodeIndex (ascending-id dense numbering) plus offset+neighbor
// arrays, so every traversal-style algorithm runs over flat int64 arrays.
// Repeated analytics calls on an unmodified graph reuse the cached snapshot
// (counter "algo_view/hit").
//
// Since §11 the snapshot is two-part: an immutable shared *base* CSR plus a
// per-direction *patch* overlay holding freshly merged neighbor runs for
// the nodes touched by recent ApplyEdgeBatch calls. When a mutation was
// batched and the graph's delta journal covers the stamp gap, Of() patches
// the stale snapshot forward in O(batch + touched nodes) instead of paying
// the O(V + E) rebuild ("algo_view/delta_apply"); delete tombstones from
// the journal annihilate base entries during the per-node merge, so reads
// stay contiguous ascending spans. Once the patched-arc fraction crosses
// deltacsr::CompactionFraction, the refresh folds everything into a fresh
// dense base ("algo_view/compact"). Non-journalable mutations (single-edge
// calls, node create/delete, table splicing) still force a full rebuild
// ("algo_view/build", plus "algo_view/invalidate" when a stale snapshot was
// evicted). deltacsr::SetEnabled(false) disables patching entirely — the
// parity oracle.
//
// Layout invariants (identical for base spans and patch runs):
//   * dense index i corresponds to the i-th smallest node id;
//   * Out(i)/In(i) are ascending spans of dense indices (the adjacency
//     vectors are id-sorted and the id->index map is monotone);
//   * undirected graphs store one neighbor array; In(i) == Out(i).
// Delta-patched views share the base arrays and NodeIndex of the snapshot
// they were patched from (&node_index() is stable across patches — only a
// rebuild or compaction changes it).
//
// Thread-safety: Of() participates in the graph's single-writer contract —
// do not call it concurrently with graph mutation or with another Of() on
// the same graph. The build itself parallelizes internally, and a built
// view is immutable (safe to share across threads).
#ifndef RINGO_ALGO_ALGO_VIEW_H_
#define RINGO_ALGO_ALGO_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algo/node_index.h"
#include "graph/delta_journal.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

class AlgoView {
 public:
  // Cached accessors: return a snapshot matching the graph's current
  // mutation stamp — reusing, delta-patching, compacting, or rebuilding the
  // cached one as the journal allows.
  static std::shared_ptr<const AlgoView> Of(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Of(const UndirectedGraph& g);

  // Uncached full builds (benchmarks, tests).
  static std::shared_ptr<const AlgoView> Build(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Build(const UndirectedGraph& g);

  // Replays net edge ops (dense-translatable node ids, insert/delete) onto
  // `prev`, producing a patched view sharing prev's base. Returns nullptr
  // when the projected patched-arc fraction crosses `compact_fraction` —
  // the caller should compact (full rebuild) instead. Exposed for tests;
  // Of() is the normal entry point.
  static std::shared_ptr<const AlgoView> ApplyDelta(
      const std::shared_ptr<const AlgoView>& prev, std::vector<EdgeOp> ops,
      double compact_fraction);

  bool directed() const { return directed_; }
  int64_t NumNodes() const { return base_->ni.size(); }
  // Stored arcs: directed edges once per direction array; undirected edges
  // twice (self-loops once), matching the adjacency vectors.
  int64_t NumOutArcs() const { return num_out_arcs_; }
  int64_t NumInArcs() const { return directed_ ? num_in_arcs_ : num_out_arcs_; }

  const NodeIndex& node_index() const { return base_->ni; }
  int64_t IndexOf(NodeId id) const { return base_->ni.IndexOf(id); }
  NodeId IdOf(int64_t index) const { return base_->ni.IdOf(index); }

  // Ascending spans of dense neighbor indices (patch run if the node was
  // touched by a replayed batch, base span otherwise).
  std::span<const int64_t> Out(int64_t i) const {
    if (!out_patch_.slot.empty()) {
      const int32_t s = out_patch_.slot[i];
      if (s >= 0) return out_patch_.Run(s);
    }
    return {base_->out_nbrs.data() + base_->out_offsets[i],
            static_cast<size_t>(base_->out_offsets[i + 1] -
                                base_->out_offsets[i])};
  }
  std::span<const int64_t> In(int64_t i) const {
    if (!directed_) return Out(i);
    if (!in_patch_.slot.empty()) {
      const int32_t s = in_patch_.slot[i];
      if (s >= 0) return in_patch_.Run(s);
    }
    return {base_->in_nbrs.data() + base_->in_offsets[i],
            static_cast<size_t>(base_->in_offsets[i + 1] -
                                base_->in_offsets[i])};
  }
  int64_t OutDegree(int64_t i) const {
    return static_cast<int64_t>(Out(i).size());
  }
  int64_t InDegree(int64_t i) const {
    return static_cast<int64_t>(In(i).size());
  }

  // ---- Delta introspection (gauges, tests, bench tables). ----
  // Number of nodes whose reads are served from patch runs.
  int64_t PatchedNodes() const {
    return static_cast<int64_t>(out_patch_.nodes.size() +
                                (directed_ ? in_patch_.nodes.size() : 0));
  }
  // Arcs served from patch runs.
  int64_t PatchedArcs() const {
    return static_cast<int64_t>(out_patch_.arena.size() +
                                (directed_ ? in_patch_.arena.size() : 0));
  }
  // Fraction of all stored arcs served from patch runs (0 for a fresh
  // base). Node-count-based when the view has no arcs at all.
  double DeltaFraction() const {
    const int64_t total = NumOutArcs() + (directed_ ? NumInArcs() : 0);
    return total == 0 ? 0.0
                      : static_cast<double>(PatchedArcs()) /
                            static_cast<double>(total);
  }

 private:
  // The immutable dense part, shared between a snapshot and every view
  // patched forward from it.
  struct BaseCsr {
    NodeIndex ni;
    std::vector<int64_t> out_offsets;  // n+1 entries.
    std::vector<int64_t> out_nbrs;
    std::vector<int64_t> in_offsets;   // Empty for undirected views.
    std::vector<int64_t> in_nbrs;
  };

  // Patch overlay for one direction: `nodes` lists the patched dense
  // indices ascending, `slot[i]` maps a dense index to its run (or -1 =
  // base), and runs live back-to-back in `arena` delimited by `offsets`.
  struct DirPatch {
    std::vector<int32_t> slot;     // Empty when nothing is patched.
    std::vector<int64_t> nodes;    // Ascending patched dense indices.
    std::vector<int64_t> offsets;  // nodes.size() + 1 entries.
    std::vector<int64_t> arena;    // Merged ascending runs.

    std::span<const int64_t> Run(int32_t s) const {
      return {arena.data() + offsets[s],
              static_cast<size_t>(offsets[s + 1] - offsets[s])};
    }
  };

  AlgoView() = default;

  // Full CSR materialization without counters (Build and the compaction
  // path wrap it with the right one).
  template <typename Graph>
  static std::shared_ptr<AlgoView> BuildFull(const Graph& g);
  // Rewrites one direction's patch overlay: union of previously patched
  // nodes and the nodes touched by `ops` (dense, sorted by owner), each
  // merged/copied into a fresh arena in parallel.
  static void PatchDirection(const AlgoView& prev, bool in_dir,
                             const std::vector<EdgeOp>& ops, AlgoView* next);
  template <typename Graph>
  static std::shared_ptr<const AlgoView> CachedOf(const Graph& g);

  bool directed_ = true;
  std::shared_ptr<const BaseCsr> base_;
  DirPatch out_patch_;
  DirPatch in_patch_;
  int64_t num_out_arcs_ = 0;
  int64_t num_in_arcs_ = 0;
};

}  // namespace ringo

#endif  // RINGO_ALGO_ALGO_VIEW_H_
