// AlgoView: a read-optimized CSR snapshot of a dynamic graph, cached on the
// graph behind its mutation stamp (DESIGN.md §9).
//
// The dynamic representations (hash table of nodes, sorted adjacency
// vectors) pay a hash probe per edge access; traversal cost is dominated by
// that machinery, not the algorithm. AlgoView materializes the graph once
// into a NodeIndex (ascending-id dense numbering) plus offset+neighbor
// arrays, so every traversal-style algorithm runs over flat int64 arrays.
// Repeated analytics calls on an unmodified graph reuse the cached snapshot
// (counter "algo_view/hit"); any structural mutation bumps the graph's
// stamp and the next Of() call rebuilds ("algo_view/build", plus
// "algo_view/invalidate" when a stale snapshot was evicted).
//
// Layout invariants:
//   * dense index i corresponds to the i-th smallest node id;
//   * Out(i)/In(i) are ascending spans of dense indices (the adjacency
//     vectors are id-sorted and the id->index map is monotone);
//   * undirected graphs store one neighbor array; In(i) == Out(i).
//
// Thread-safety: Of() participates in the graph's single-writer contract —
// do not call it concurrently with graph mutation or with another Of() on
// the same graph. The build itself parallelizes internally, and a built
// view is immutable (safe to share across threads).
#ifndef RINGO_ALGO_ALGO_VIEW_H_
#define RINGO_ALGO_ALGO_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algo/node_index.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

class AlgoView {
 public:
  // Cached accessors: return the snapshot built at the graph's current
  // mutation stamp, building and caching it if needed.
  static std::shared_ptr<const AlgoView> Of(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Of(const UndirectedGraph& g);

  // Uncached builds (benchmarks, tests).
  static std::shared_ptr<const AlgoView> Build(const DirectedGraph& g);
  static std::shared_ptr<const AlgoView> Build(const UndirectedGraph& g);

  bool directed() const { return directed_; }
  int64_t NumNodes() const { return ni_.size(); }
  // Stored arcs: directed edges once per direction array; undirected edges
  // twice (self-loops once), matching the adjacency vectors.
  int64_t NumOutArcs() const { return static_cast<int64_t>(out_nbrs_.size()); }
  int64_t NumInArcs() const {
    return directed_ ? static_cast<int64_t>(in_nbrs_.size()) : NumOutArcs();
  }

  const NodeIndex& node_index() const { return ni_; }
  int64_t IndexOf(NodeId id) const { return ni_.IndexOf(id); }
  NodeId IdOf(int64_t index) const { return ni_.IdOf(index); }

  // Ascending spans of dense neighbor indices.
  std::span<const int64_t> Out(int64_t i) const {
    return {out_nbrs_.data() + out_offsets_[i],
            static_cast<size_t>(out_offsets_[i + 1] - out_offsets_[i])};
  }
  std::span<const int64_t> In(int64_t i) const {
    if (!directed_) return Out(i);
    return {in_nbrs_.data() + in_offsets_[i],
            static_cast<size_t>(in_offsets_[i + 1] - in_offsets_[i])};
  }
  int64_t OutDegree(int64_t i) const {
    return out_offsets_[i + 1] - out_offsets_[i];
  }
  int64_t InDegree(int64_t i) const {
    if (!directed_) return OutDegree(i);
    return in_offsets_[i + 1] - in_offsets_[i];
  }

 private:
  AlgoView() = default;

  bool directed_ = true;
  NodeIndex ni_;
  std::vector<int64_t> out_offsets_;  // n+1 entries.
  std::vector<int64_t> out_nbrs_;
  std::vector<int64_t> in_offsets_;   // Empty for undirected views.
  std::vector<int64_t> in_nbrs_;
};

}  // namespace ringo

#endif  // RINGO_ALGO_ALGO_VIEW_H_
