#include "algo/bfs_engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <span>

#include "util/cancel.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/radix_sort.h"

namespace ringo {
namespace bfs {

namespace {

constexpr int64_t kNoDist = -1;
// Internal "no parent yet" marker: must compare greater than every dense
// index so the min-reduction works; remapped to -1 before returning.
constexpr int64_t kUnsetParent = std::numeric_limits<int64_t>::max();
// Below this much per-level work (frontier + scanned arcs) a fork/join is
// not worth it; the level runs on the calling thread. The sequential step
// computes the same dist/parent values, so the cutoff is invisible in
// results.
constexpr int64_t kSeqLevelCutoff = 1 << 11;
// Bottom-up block: 64 bitmap words, so next-frontier bit writes never
// straddle a block boundary and need no atomics.
constexpr int64_t kBlockNodes = 1 << 12;

class Bitmap {
 public:
  explicit Bitmap(int64_t n) : words_((n + 63) >> 6, 0) {}
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }
  bool Test(int64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void Set(int64_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void SetAtomic(int64_t i) {
    std::atomic_ref<uint64_t>(words_[i >> 6])
        .fetch_or(uint64_t{1} << (i & 63), std::memory_order_relaxed);
  }
  void SwapWith(Bitmap& o) { words_.swap(o.words_); }

 private:
  std::vector<uint64_t> words_;
};

// Resolves a BfsDir against a view into one or two sorted adjacency spans
// per vertex. The b-span is non-empty only for kBoth on a directed view.
class DirView {
 public:
  DirView(const AlgoView& view, BfsDir dir) : v_(&view) {
    if (!view.directed() || dir == BfsDir::kOut) {
      fwd_out_ = true;
    } else if (dir == BfsDir::kIn) {
      fwd_in_ = true;
    } else {
      fwd_out_ = fwd_in_ = true;
    }
  }

  bool both() const { return fwd_out_ && fwd_in_; }

  // Arcs followed when expanding u forward. NbrSpan (not std::span):
  // on a compressed base each run lives in pooled scratch pinned by the
  // returned handle for as long as the caller holds it.
  NbrSpan FwdA(int64_t u) const {
    return fwd_out_ ? v_->Out(u) : v_->In(u);
  }
  NbrSpan FwdB(int64_t u) const { return both() ? v_->In(u) : NbrSpan{}; }
  // Candidate predecessors of an unvisited vertex (reverse of Fwd). For an
  // undirected view In == Out, so this degenerates correctly.
  NbrSpan BwdA(int64_t u) const {
    return fwd_out_ ? v_->In(u) : v_->Out(u);
  }
  NbrSpan BwdB(int64_t u) const { return both() ? v_->Out(u) : NbrSpan{}; }

  // Degrees come from the O(1) offset arrays — no decode. When both() is
  // set FwdA is Out and FwdB is In.
  int64_t FwdDegree(int64_t u) const {
    const int64_t a = fwd_out_ ? v_->OutDegree(u) : v_->InDegree(u);
    return both() ? a + v_->InDegree(u) : a;
  }
  int64_t TotalFwdArcs() const {
    int64_t total = 0;
    if (fwd_out_) total += v_->NumOutArcs();
    if (fwd_in_) total += v_->NumInArcs();
    return total;
  }

 private:
  const AlgoView* v_;
  bool fwd_out_ = false;
  bool fwd_in_ = false;
};

// Minimum dense index in `front` among two ascending candidate spans
// (two-pointer merge); -1 if the frontier contains none of them.
int64_t MinFrontierParent(std::span<const int64_t> a,
                          std::span<const int64_t> b, const Bitmap& front) {
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    int64_t u;
    if (j >= b.size()) {
      u = a[i++];
    } else if (i >= a.size()) {
      u = b[j++];
    } else if (a[i] <= b[j]) {
      u = a[i++];
    } else {
      u = b[j++];
    }
    if (front.Test(u)) return u;
  }
  return -1;
}

void AtomicMinI64(int64_t* p, int64_t v) {
  std::atomic_ref<int64_t> a(*p);
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// One sequential top-down level. The frontier is ascending, so the first
// discoverer of each vertex is its minimum-id frontier predecessor.
int64_t TopDownSeq(const DirView& dv, int64_t level, bool parents,
                   const std::vector<int64_t>& frontier,
                   std::vector<int64_t>* next, DenseBfs* r,
                   int64_t* new_scout) {
  next->clear();
  int64_t sc = 0;
  auto visit = [&](int64_t u, int64_t w) {
    if (r->dist[w] == kNoDist) {
      r->dist[w] = level;
      if (parents) r->parent[w] = u;
      next->push_back(w);
      sc += dv.FwdDegree(w);
    }
  };
  for (int64_t u : frontier) {
    for (int64_t w : dv.FwdA(u)) visit(u, w);
    for (int64_t w : dv.FwdB(u)) visit(u, w);
  }
  std::sort(next->begin(), next->end());
  *new_scout = sc;
  return static_cast<int64_t>(next->size());
}

// One parallel top-down level: CAS-claim into per-thread buffers, then
// concatenate in slice order and radix-sort so the next frontier is the
// same ascending list every schedule produces.
int64_t TopDownPar(const DirView& dv, int64_t level, bool parents,
                   const std::vector<int64_t>& frontier,
                   std::vector<int64_t>* next, DenseBfs* r,
                   int64_t* new_scout) {
  const int threads = NumThreads();
  const std::vector<int64_t> bounds =
      PartitionRange(static_cast<int64_t>(frontier.size()), threads);
  std::vector<std::vector<int64_t>> bufs(threads);
  std::vector<int64_t> scouts(threads, 0);
  ParallelFor(0, threads, [&](int64_t t) {
    std::vector<int64_t>& buf = bufs[t];
    int64_t sc = 0;
    auto visit = [&](int64_t u, int64_t w) {
      std::atomic_ref<int64_t> dref(r->dist[w]);
      int64_t cur = dref.load(std::memory_order_relaxed);
      if (cur == kNoDist) {
        int64_t expected = kNoDist;
        if (dref.compare_exchange_strong(expected, level,
                                         std::memory_order_relaxed)) {
          buf.push_back(w);
          sc += dv.FwdDegree(w);
          cur = level;
        } else {
          cur = expected;
        }
      }
      // Every frontier predecessor of a level-`level` vertex passes here,
      // so the atomic min sees all of them.
      if (parents && cur == level) AtomicMinI64(&r->parent[w], u);
    };
    for (int64_t idx = bounds[t]; idx < bounds[t + 1]; ++idx) {
      const int64_t u = frontier[idx];
      for (int64_t w : dv.FwdA(u)) visit(u, w);
      for (int64_t w : dv.FwdB(u)) visit(u, w);
    }
    scouts[t] = sc;
  });
  int64_t total = 0;
  int64_t sc = 0;
  for (int t = 0; t < threads; ++t) {
    total += static_cast<int64_t>(bufs[t].size());
    sc += scouts[t];
  }
  next->clear();
  next->reserve(total);
  for (int t = 0; t < threads; ++t) {
    next->insert(next->end(), bufs[t].begin(), bufs[t].end());
  }
  RadixSortI64(*next);
  *new_scout = sc;
  return total;
}

// One bottom-up level over bitmap frontiers. Vertices are processed in
// word-aligned blocks: dist/parent/next-bit writes stay block-local, and
// per-block awake/scout partials merge in block order (exact int sums).
int64_t BottomUp(const DirView& dv, int64_t level, bool parents,
                 const Bitmap& front, Bitmap* next_bm, DenseBfs* r,
                 int64_t* new_scout) {
  const int64_t n = static_cast<int64_t>(r->dist.size());
  const int64_t nblocks = (n + kBlockNodes - 1) / kBlockNodes;
  next_bm->ClearAll();
  std::vector<int64_t> awakes(nblocks, 0), scouts(nblocks, 0);
  auto block = [&](int64_t b) {
    const int64_t lo = b * kBlockNodes;
    const int64_t hi = std::min(n, lo + kBlockNodes);
    int64_t aw = 0, sc = 0;
    for (int64_t w = lo; w < hi; ++w) {
      if (r->dist[w] != kNoDist) continue;
      const int64_t p = MinFrontierParent(dv.BwdA(w), dv.BwdB(w), front);
      if (p < 0) continue;
      r->dist[w] = level;
      if (parents) r->parent[w] = p;
      next_bm->Set(w);
      ++aw;
      sc += dv.FwdDegree(w);
    }
    awakes[b] = aw;
    scouts[b] = sc;
  };
  if (nblocks <= 1 || NumThreads() <= 1) {
    for (int64_t b = 0; b < nblocks; ++b) block(b);
  } else {
    ParallelForDynamic(0, nblocks, block, /*chunk=*/1);
  }
  int64_t aw = 0, sc = 0;
  for (int64_t b = 0; b < nblocks; ++b) {
    aw += awakes[b];
    sc += scouts[b];
  }
  *new_scout = sc;
  return aw;
}

void ListToBitmap(const std::vector<int64_t>& frontier, Bitmap* bm) {
  bm->ClearAll();
  const int64_t m = static_cast<int64_t>(frontier.size());
  if (m < kSeqLevelCutoff || NumThreads() <= 1) {
    for (int64_t v : frontier) bm->Set(v);
  } else {
    ParallelFor(0, m, [&](int64_t i) { bm->SetAtomic(frontier[i]); });
  }
}

// Collects the vertices at distance `level` in ascending order (blocked
// count + prefix + fill).
void LevelToList(const DenseBfs& r, int64_t level, int64_t expected,
                 std::vector<int64_t>* out) {
  const int64_t n = static_cast<int64_t>(r.dist.size());
  out->clear();
  if (expected < kSeqLevelCutoff || NumThreads() <= 1) {
    out->reserve(expected);
    for (int64_t i = 0; i < n; ++i) {
      if (r.dist[i] == level) out->push_back(i);
    }
    return;
  }
  const int64_t nblocks = (n + kBlockNodes - 1) / kBlockNodes;
  std::vector<int64_t> offsets(nblocks + 1, 0);
  ParallelFor(0, nblocks, [&](int64_t b) {
    const int64_t lo = b * kBlockNodes;
    const int64_t hi = std::min(n, lo + kBlockNodes);
    int64_t c = 0;
    for (int64_t i = lo; i < hi; ++i) c += (r.dist[i] == level);
    offsets[b] = c;
  });
  const int64_t total = ExclusivePrefixSum(offsets);
  out->resize(total);
  ParallelFor(0, nblocks, [&](int64_t b) {
    const int64_t lo = b * kBlockNodes;
    const int64_t hi = std::min(n, lo + kBlockNodes);
    int64_t pos = offsets[b];
    for (int64_t i = lo; i < hi; ++i) {
      if (r.dist[i] == level) (*out)[pos++] = i;
    }
  });
}

}  // namespace

DenseBfs Run(const AlgoView& view, int64_t src, BfsDir dir,
             const Options& opts) {
  DenseBfs r;
  const int64_t n = view.NumNodes();
  r.dist.assign(n, kNoDist);
  const bool parents = opts.need_parents;
  if (parents) r.parent.assign(n, kUnsetParent);
  if (src >= 0 && src < n) {
    const DirView dv(view, dir);
    r.dist[src] = 0;
    r.reached = 1;

    std::vector<int64_t> frontier{src}, next;
    Bitmap front_bm(n), next_bm(n);
    bool frontier_is_bitmap = false;
    bool bottom_up = false;
    int64_t awake = 1;
    int64_t prev_awake = std::numeric_limits<int64_t>::max();
    int64_t scout = dv.FwdDegree(src);
    int64_t edges_to_check = dv.TotalFwdArcs();
    int64_t level = 0;

    while (awake > 0) {
      // Deadline-bounded serving: a cancelled query abandons the traversal
      // mid-level; the executor discards the partial result. One TLS load
      // when no token is installed.
      if (cancel::Checkpoint()) break;
      if (opts.stop_at >= 0 && r.dist[opts.stop_at] != kNoDist) break;
      ++level;
      if (opts.strategy == Strategy::kAuto) {
        if (!bottom_up) {
          bottom_up = static_cast<double>(scout) * opts.alpha >
                      static_cast<double>(edges_to_check);
        } else if (awake < prev_awake &&
                   static_cast<double>(awake) * opts.beta <
                       static_cast<double>(n)) {
          // Frontier is shrinking and small again: go back to top-down.
          bottom_up = false;
        }
      }
      int64_t new_awake = 0, new_scout = 0;
      if (bottom_up) {
        if (!frontier_is_bitmap) {
          ListToBitmap(frontier, &front_bm);
          frontier_is_bitmap = true;
        }
        new_awake =
            BottomUp(dv, level, parents, front_bm, &next_bm, &r, &new_scout);
        front_bm.SwapWith(next_bm);
        ++r.bottom_up_steps;
      } else {
        if (frontier_is_bitmap) {
          LevelToList(r, level - 1, awake, &frontier);
          frontier_is_bitmap = false;
        }
        const bool seq =
            NumThreads() <= 1 || scout + awake < kSeqLevelCutoff;
        new_awake = seq ? TopDownSeq(dv, level, parents, frontier, &next, &r,
                                     &new_scout)
                        : TopDownPar(dv, level, parents, frontier, &next, &r,
                                     &new_scout);
        frontier.swap(next);
        ++r.top_down_steps;
      }
      edges_to_check -= scout;
      prev_awake = awake;
      awake = new_awake;
      scout = new_scout;
      r.reached += awake;
      if (awake > 0) r.max_depth = level;
    }
  }
  if (parents) {
    const int64_t nn = static_cast<int64_t>(r.parent.size());
    for (int64_t i = 0; i < nn; ++i) {
      if (r.parent[i] == kUnsetParent) r.parent[i] = -1;
    }
  }
  RINGO_COUNTER_ADD("bfs/runs", 1);
  RINGO_COUNTER_ADD("bfs/top_down_steps", r.top_down_steps);
  RINGO_COUNTER_ADD("bfs/bottom_up_steps", r.bottom_up_steps);
  return r;
}

int64_t SequentialDistances(const AlgoView& view, int64_t src, BfsDir dir,
                            std::vector<int64_t>* dist) {
  const int64_t n = view.NumNodes();
  dist->assign(n, kNoDist);
  if (src < 0 || src >= n) return 0;
  const DirView dv(view, dir);
  std::vector<int64_t> frontier{src}, next;
  (*dist)[src] = 0;
  int64_t reached = 1;
  int64_t level = 0;
  while (!frontier.empty()) {
    if (cancel::Checkpoint()) break;  // Deadline-bounded serving.
    ++level;
    next.clear();
    for (int64_t u : frontier) {
      for (int64_t w : dv.FwdA(u)) {
        if ((*dist)[w] == kNoDist) {
          (*dist)[w] = level;
          next.push_back(w);
        }
      }
      for (int64_t w : dv.FwdB(u)) {
        if ((*dist)[w] == kNoDist) {
          (*dist)[w] = level;
          next.push_back(w);
        }
      }
    }
    reached += static_cast<int64_t>(next.size());
    frontier.swap(next);
  }
  return reached;
}

}  // namespace bfs
}  // namespace ringo
