#include "algo/csr_switch.h"

#include <atomic>

namespace ringo {
namespace csr {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace csr
}  // namespace ringo
