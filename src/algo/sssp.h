// Single-source shortest paths: unweighted (BFS, the Table 6 benchmark) and
// weighted (Dijkstra over an EdgeWeights side table).
#ifndef RINGO_ALGO_SSSP_H_
#define RINGO_ALGO_SSSP_H_

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/edge_weights.h"
#include "graph/undirected_graph.h"
#include "util/result.h"

namespace ringo {

// Unweighted SSSP = BFS hop counts; (id, hops) for reachable nodes,
// ascending by id. This is the paper's sequential "SSSP" benchmark.
NodeInts SsspUnweighted(const DirectedGraph& g, NodeId src);

// Dijkstra over non-negative edge weights (default weight 1.0 for edges
// absent from `w`). Returns (id, distance) for reachable nodes. Fails with
// InvalidArgument if a traversed edge has negative weight.
Result<NodeValues> Dijkstra(const DirectedGraph& g, const EdgeWeights& w,
                            NodeId src);
Result<NodeValues> Dijkstra(const UndirectedGraph& g, const EdgeWeights& w,
                            NodeId src);

}  // namespace ringo

#endif  // RINGO_ALGO_SSSP_H_
