// Delta+varint codec and pooled decode scratch for the compressed CSR base
// layout (DESIGN.md §14).
//
// AlgoView guarantees every neighbor run is a strictly ascending span of
// dense indices, so each run compresses to varint(first) followed by
// varint(gap) per remaining neighbor — LEB128, low 7 bits per byte,
// high bit = continuation. The per-node *element* offsets stay plain in
// BaseCsr (degrees must be O(1) — PageRank divides by out-degree every
// iteration), so a CompressedDir carries only the byte directory and the
// byte stream. Typical social-graph gap distributions land at ~2 bytes per
// arc vs 8 plain.
//
// Decoding targets pooled per-thread scratch buffers handed out as
// refcounted BufRefs: a NbrSpan returned by AlgoView::Out/In holds one ref,
// so the bytes stay valid exactly as long as any span over them lives —
// kernels that hold one span while decoding others (triangle counting's
// Out(i) vs Out(j)) get distinct buffers, and buffers recycle to the
// releasing thread's free list the moment the last span drops. Refcounts
// are atomic, so a span may migrate threads; the pool itself is
// thread-local and lock-free.
#ifndef RINGO_ALGO_COMPACT_CSR_H_
#define RINGO_ALGO_COMPACT_CSR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace ringo {
namespace compactcsr {

// One direction's compressed neighbor payload. Element offsets (degrees)
// live beside it in the owning BaseCsr; byte_offsets has n+1 entries
// delimiting each node's varint stream inside `bytes`.
struct CompressedDir {
  std::vector<uint64_t> byte_offsets;
  std::vector<uint8_t> bytes;

  bool has() const { return !byte_offsets.empty(); }
  int64_t MemoryUsageBytes() const {
    return static_cast<int64_t>(byte_offsets.capacity() * sizeof(uint64_t) +
                                bytes.capacity() * sizeof(uint8_t));
  }
};

// Compresses a plain CSR direction (offsets: n+1 entries, nbrs: ascending
// runs). Two parallel passes: per-node byte sizing + prefix sum, then
// independent per-node encodes.
CompressedDir Compress(const std::vector<int64_t>& offsets,
                       const std::vector<int64_t>& nbrs);

// Decodes `count` values of one varint delta stream into dst.
void DecodeRun(const uint8_t* src, int64_t count, int64_t* dst);

// Decode-and-consume fusion: calls fn(value) for each of the `count`
// decoded values without materializing a buffer. This is the hot path for
// sequential-scan kernels (PageRank's pull) where the pooled-scratch
// round-trip of DecodeRun would dominate small runs; the one-byte varint
// (gap < 128 — the overwhelmingly common case on delta-encoded social
// graphs) costs a load, a test, and two adds.
template <typename Fn>
inline void DecodeRunForEach(const uint8_t* src, int64_t count, Fn&& fn) {
  int64_t prev = 0;
  for (int64_t k = 0; k < count; ++k) {
    uint64_t b = *src++;
    if (b & 0x80) {
      uint64_t v = b & 0x7F;
      int shift = 7;
      do {
        b = *src++;
        v |= (b & 0x7F) << shift;
        shift += 7;
      } while (b & 0x80);
      prev += static_cast<int64_t>(v);
    } else {
      prev += static_cast<int64_t>(b);
    }
    fn(prev);
  }
}

// ---- Pooled decode scratch ----------------------------------------------

struct DecodeBuf {
  std::unique_ptr<int64_t[]> data;
  size_t cap = 0;
  std::atomic<int32_t> refs{0};
};

// Returns a buffer with capacity >= n to the thread-local pool; internal.
void ReleaseBuf(DecodeBuf* b);

// Refcounted handle to a pooled decode buffer. Default-constructed (null)
// on the plain-layout path, so copying a NbrSpan there is two words.
class BufRef {
 public:
  BufRef() = default;
  explicit BufRef(DecodeBuf* b) : b_(b) {}  // Takes over one ref.
  BufRef(const BufRef& o) : b_(o.b_) {
    if (b_ != nullptr) b_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BufRef(BufRef&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  BufRef& operator=(const BufRef& o) {
    BufRef tmp(o);
    std::swap(b_, tmp.b_);
    return *this;
  }
  BufRef& operator=(BufRef&& o) noexcept {
    std::swap(b_, o.b_);
    return *this;
  }
  ~BufRef() {
    if (b_ != nullptr &&
        b_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ReleaseBuf(b_);
    }
  }

  int64_t* data() const { return b_ != nullptr ? b_->data.get() : nullptr; }

 private:
  DecodeBuf* b_ = nullptr;
};

// Hands out a buffer with capacity >= n holding one ref, reusing the
// calling thread's free list when possible.
BufRef AcquireBuf(size_t n);

}  // namespace compactcsr
}  // namespace ringo

#endif  // RINGO_ALGO_COMPACT_CSR_H_
