#include "algo/anf.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Flajolet–Martin magic constant: E[2^R] = card / phi.
constexpr double kPhi = 0.77351;

// Position of the lowest zero bit.
int LowestZeroBit(uint64_t mask) {
  for (int b = 0; b < 64; ++b) {
    if ((mask & (uint64_t{1} << b)) == 0) return b;
  }
  return 64;
}

// Shared FM-sketch propagation. `nbrs_of(i)` yields i's neighbors as an
// ascending dense-index span; a self entry is harmless (OR with the node's
// own sketch is idempotent), so CSR spans need no filtering and match the
// legacy scaffold exactly. Sketch seeding consumes the Rng in dense-index
// order, identical on both paths, and the cardinality estimate uses the
// blocked deterministic sum — the old `omp reduction` combined partials in
// a team-size-dependent order, so estimates drifted in the last ulps as the
// thread count changed (the "ANF seed stability" bug).
template <typename NbrsFn>
AnfResult AnfKernel(int64_t n, NbrsFn&& nbrs_of, int64_t max_h, int64_t k,
                    uint64_t seed) {
  AnfResult out;

  // k sketches per node; each node seeds one geometric bit per sketch.
  std::vector<uint64_t> cur(n * k, 0);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t r = 0; r < k; ++r) {
      int bit = 0;
      while (bit < 62 && rng.Bernoulli(0.5)) ++bit;
      cur[i * k + r] = uint64_t{1} << bit;
    }
  }

  auto estimate_total = [&](const std::vector<uint64_t>& sketches) {
    return DeterministicBlockSum(0, n, [&](int64_t i) {
      double rsum = 0;
      for (int64_t r = 0; r < k; ++r) {
        rsum += LowestZeroBit(sketches[i * k + r]);
      }
      return std::pow(2.0, rsum / static_cast<double>(k)) / kPhi;
    });
  };

  out.neighborhood.reserve(max_h + 1);
  out.neighborhood.push_back(estimate_total(cur));
  std::vector<uint64_t> next(n * k);
  for (int64_t h = 1; h <= max_h; ++h) {
    ParallelForDynamic(0, n, [&](int64_t i) {
      for (int64_t r = 0; r < k; ++r) {
        uint64_t m = cur[i * k + r];
        for (const int64_t j : nbrs_of(i)) m |= cur[j * k + r];
        next[i * k + r] = m;
      }
    });
    cur.swap(next);
    out.neighborhood.push_back(estimate_total(cur));
  }

  // Effective diameter: 90% of the final plateau, linearly interpolated.
  const double target = 0.9 * out.neighborhood.back();
  out.effective_diameter = static_cast<double>(max_h);
  for (int64_t h = 0; h <= max_h; ++h) {
    if (out.neighborhood[h] >= target) {
      if (h == 0) {
        out.effective_diameter = 0;
      } else {
        const double prev = out.neighborhood[h - 1];
        const double need = target - prev;
        const double gain = out.neighborhood[h] - prev;
        out.effective_diameter =
            static_cast<double>(h - 1) + (gain > 0 ? need / gain : 1.0);
      }
      break;
    }
  }
  return out;
}

}  // namespace

Result<AnfResult> ApproxNeighborhoodFunction(const UndirectedGraph& g,
                                             int64_t max_h, int64_t k,
                                             uint64_t seed) {
  if (max_h < 0 || k < 1 || k > 4096) {
    return Status::InvalidArgument("ANF needs max_h >= 0 and k in [1, 4096]");
  }
  const int64_t n = g.NumNodes();
  if (n == 0) {
    AnfResult out;
    out.neighborhood.assign(max_h + 1, 0.0);
    return out;
  }
  trace::Span span("Algo/Anf");
  span.AddAttr("nodes", n);
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("max_h", max_h);
  span.AddAttr("sketches", k);
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));

  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    return AnfKernel(
        n, [&](int64_t i) { return view->Out(i); }, max_h, k, seed);
  }

  // Legacy oracle: per-call dense adjacency, one hash probe per edge.
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<std::vector<int64_t>> adj(n);
  ParallelForDynamic(0, n, [&](int64_t i) {
    for (NodeId v : g.GetNode(ni.IdOf(i))->nbrs) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) adj[i].push_back(j);
    }
  });
  return AnfKernel(
      n, [&](int64_t i) { return std::span<const int64_t>(adj[i]); }, max_h,
      k, seed);
}

}  // namespace ringo
