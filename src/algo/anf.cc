#include "algo/anf.h"

#include <algorithm>
#include <cmath>

#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ringo {

namespace {

// Flajolet–Martin magic constant: E[2^R] = card / phi.
constexpr double kPhi = 0.77351;

// Position of the lowest zero bit.
int LowestZeroBit(uint64_t mask) {
  for (int b = 0; b < 64; ++b) {
    if ((mask & (uint64_t{1} << b)) == 0) return b;
  }
  return 64;
}

}  // namespace

Result<AnfResult> ApproxNeighborhoodFunction(const UndirectedGraph& g,
                                             int64_t max_h, int64_t k,
                                             uint64_t seed) {
  if (max_h < 0 || k < 1 || k > 4096) {
    return Status::InvalidArgument("ANF needs max_h >= 0 and k in [1, 4096]");
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  AnfResult out;
  if (n == 0) {
    out.neighborhood.assign(max_h + 1, 0.0);
    return out;
  }

  // Dense adjacency.
  std::vector<std::vector<int64_t>> adj(n);
  ParallelForDynamic(0, n, [&](int64_t i) {
    for (NodeId v : g.GetNode(ni.IdOf(i))->nbrs) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) adj[i].push_back(j);
    }
  });

  // k sketches per node; each node seeds one geometric bit per sketch.
  std::vector<uint64_t> cur(n * k, 0);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t r = 0; r < k; ++r) {
      int bit = 0;
      while (bit < 62 && rng.Bernoulli(0.5)) ++bit;
      cur[i * k + r] = uint64_t{1} << bit;
    }
  }

  auto estimate_total = [&](const std::vector<uint64_t>& sketches) {
    double total = 0;
#pragma omp parallel for reduction(+ : total) schedule(static)
    for (int64_t i = 0; i < n; ++i) {
      double rsum = 0;
      for (int64_t r = 0; r < k; ++r) {
        rsum += LowestZeroBit(sketches[i * k + r]);
      }
      total += std::pow(2.0, rsum / static_cast<double>(k)) / kPhi;
    }
    return total;
  };

  out.neighborhood.reserve(max_h + 1);
  out.neighborhood.push_back(estimate_total(cur));
  std::vector<uint64_t> next(n * k);
  for (int64_t h = 1; h <= max_h; ++h) {
    ParallelForDynamic(0, n, [&](int64_t i) {
      for (int64_t r = 0; r < k; ++r) {
        uint64_t m = cur[i * k + r];
        for (int64_t j : adj[i]) m |= cur[j * k + r];
        next[i * k + r] = m;
      }
    });
    cur.swap(next);
    out.neighborhood.push_back(estimate_total(cur));
  }

  // Effective diameter: 90% of the final plateau, linearly interpolated.
  const double target = 0.9 * out.neighborhood.back();
  out.effective_diameter = static_cast<double>(max_h);
  for (int64_t h = 0; h <= max_h; ++h) {
    if (out.neighborhood[h] >= target) {
      if (h == 0) {
        out.effective_diameter = 0;
      } else {
        const double prev = out.neighborhood[h - 1];
        const double need = target - prev;
        const double gain = out.neighborhood[h] - prev;
        out.effective_diameter =
            static_cast<double>(h - 1) + (gain > 0 ? need / gain : 1.0);
      }
      break;
    }
  }
  return out;
}

}  // namespace ringo
