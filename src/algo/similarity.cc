#include "algo/similarity.h"

#include <cmath>
#include <vector>

namespace ringo {

namespace {

// Sorted neighbor list of u excluding u and `other`.
std::vector<NodeId> CleanNbrs(const UndirectedGraph& g, NodeId u,
                              NodeId other) {
  std::vector<NodeId> out;
  const UndirectedGraph::NodeData* nd = g.GetNode(u);
  if (nd == nullptr) return out;
  out.reserve(nd->nbrs.size());
  for (NodeId w : nd->nbrs) {
    if (w != u && w != other) out.push_back(w);
  }
  return out;
}

template <typename Fn>
void ForEachCommon(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                   const Fn& fn) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

int64_t CommonNeighbors(const UndirectedGraph& g, NodeId u, NodeId v) {
  const std::vector<NodeId> nu = CleanNbrs(g, u, v);
  const std::vector<NodeId> nv = CleanNbrs(g, v, u);
  int64_t count = 0;
  ForEachCommon(nu, nv, [&](NodeId) { ++count; });
  return count;
}

double JaccardSimilarity(const UndirectedGraph& g, NodeId u, NodeId v) {
  const std::vector<NodeId> nu = CleanNbrs(g, u, v);
  const std::vector<NodeId> nv = CleanNbrs(g, v, u);
  int64_t common = 0;
  ForEachCommon(nu, nv, [&](NodeId) { ++common; });
  const int64_t uni =
      static_cast<int64_t>(nu.size() + nv.size()) - common;
  return uni > 0 ? static_cast<double>(common) / static_cast<double>(uni)
                 : 0.0;
}

double AdamicAdar(const UndirectedGraph& g, NodeId u, NodeId v) {
  const std::vector<NodeId> nu = CleanNbrs(g, u, v);
  const std::vector<NodeId> nv = CleanNbrs(g, v, u);
  double score = 0.0;
  ForEachCommon(nu, nv, [&](NodeId w) {
    const int64_t d = g.Degree(w);
    if (d >= 2) score += 1.0 / std::log(static_cast<double>(d));
  });
  return score;
}

}  // namespace ringo
