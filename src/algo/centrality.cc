#include "algo/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ringo {

namespace {

// Dense undirected adjacency scaffold shared by the BFS-per-node measures.
struct DenseAdj {
  NodeIndex ni;
  std::vector<std::vector<int64_t>> adj;

  explicit DenseAdj(const UndirectedGraph& g) : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    adj.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      const auto& nbrs = g.GetNode(ni.IdOf(i))->nbrs;
      adj[i].reserve(nbrs.size());
      for (NodeId v : nbrs) {
        const int64_t j = ni.IndexOf(v);
        if (j != i) adj[i].push_back(j);  // Self-loops don't affect paths.
      }
    });
  }

  // Directed view: traversal follows out-edges only.
  explicit DenseAdj(const DirectedGraph& g) : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    adj.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      const auto& out = g.GetNode(ni.IdOf(i))->out;
      adj[i].reserve(out.size());
      for (NodeId v : out) {
        const int64_t j = ni.IndexOf(v);
        if (j != i) adj[i].push_back(j);
      }
    });
  }

  int64_t size() const { return ni.size(); }
};

// BFS from `src` over dense adjacency; fills dist (-1 = unreachable) and
// returns the visit order.
std::vector<int64_t> DenseBfs(const DenseAdj& da, int64_t src,
                              std::vector<int64_t>* dist) {
  dist->assign(da.size(), -1);
  std::vector<int64_t> order;
  order.reserve(64);
  (*dist)[src] = 0;
  order.push_back(src);
  for (size_t head = 0; head < order.size(); ++head) {
    const int64_t u = order[head];
    for (int64_t v : da.adj[u]) {
      if ((*dist)[v] < 0) {
        (*dist)[v] = (*dist)[u] + 1;
        order.push_back(v);
      }
    }
  }
  return order;
}

NodeValues DegreeCentralityImpl(const NodeIndex& ni,
                                const std::vector<int64_t>& deg) {
  const int64_t n = ni.size();
  std::vector<double> c(n, 0.0);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  ParallelFor(0, n, [&](int64_t i) { c[i] = static_cast<double>(deg[i]) / denom; });
  return ni.Zip(c);
}

}  // namespace

NodeValues DegreeCentrality(const UndirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.Degree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

NodeValues InDegreeCentrality(const DirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.InDegree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

NodeValues OutDegreeCentrality(const DirectedGraph& g) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.OutDegree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

namespace {

NodeValues ClosenessImpl(const DenseAdj& da) {
  const int64_t n = da.size();
  std::vector<double> c(n, 0.0);
#pragma omp parallel
  {
    std::vector<int64_t> dist;
#pragma omp for schedule(dynamic, 16)
    for (int64_t u = 0; u < n; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      int64_t total = 0;
      for (int64_t v : order) total += dist[v];
      const int64_t r = static_cast<int64_t>(order.size());
      if (total > 0 && n > 1) {
        // Wasserman–Faust correction for disconnected graphs.
        c[u] = (static_cast<double>(r - 1) / total) *
               (static_cast<double>(r - 1) / static_cast<double>(n - 1));
      }
    }
  }
  return da.ni.Zip(c);
}

}  // namespace

NodeValues ClosenessCentrality(const UndirectedGraph& g) {
  return ClosenessImpl(DenseAdj(g));
}

NodeValues ClosenessCentralityDirected(const DirectedGraph& g) {
  return ClosenessImpl(DenseAdj(g));
}

NodeValues ApproxClosenessCentrality(const UndirectedGraph& g,
                                     int64_t samples, uint64_t seed) {
  const DenseAdj da(g);
  const int64_t n = da.size();
  if (n == 0) return {};
  samples = std::min(samples, n);
  // Deterministic pivot sample without replacement.
  std::vector<int64_t> pivots(n);
  std::iota(pivots.begin(), pivots.end(), 0);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(pivots[i], pivots[rng.UniformInt(i, n - 1)]);
  }
  pivots.resize(samples);

  // Accumulate distances from each pivot to all nodes.
  std::vector<double> sum(n, 0.0);
  std::vector<int64_t> reached(n, 0);
  std::vector<int64_t> dist;
  for (int64_t p : pivots) {
    DenseBfs(da, p, &dist);
    for (int64_t v = 0; v < n; ++v) {
      if (dist[v] > 0) {  // Exclude the pivot's own zero distance.
        sum[v] += dist[v];
        ++reached[v];
      }
    }
  }
  std::vector<double> c(n, 0.0);
  for (int64_t v = 0; v < n; ++v) {
    if (sum[v] > 0 && reached[v] > 0 && n > 1) {
      // avg estimates v's mean distance to the other nodes it can reach;
      // r_est estimates |reachable set| (the +1 restores v itself). With
      // samples == n this reproduces ClosenessCentrality exactly.
      const double avg = sum[v] / static_cast<double>(reached[v]);
      const double r_est = static_cast<double>(reached[v]) /
                               static_cast<double>(samples) * n +
                           1.0;
      c[v] = (1.0 / avg) * ((r_est - 1) / static_cast<double>(n - 1));
    }
  }
  return da.ni.Zip(c);
}

NodeValues HarmonicCentrality(const UndirectedGraph& g) {
  const DenseAdj da(g);
  const int64_t n = da.size();
  std::vector<double> c(n, 0.0);
#pragma omp parallel
  {
    std::vector<int64_t> dist;
#pragma omp for schedule(dynamic, 16)
    for (int64_t u = 0; u < n; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      double acc = 0.0;
      for (int64_t v : order) {
        if (v != u) acc += 1.0 / static_cast<double>(dist[v]);
      }
      c[u] = n > 1 ? acc / static_cast<double>(n - 1) : 0.0;
    }
  }
  return da.ni.Zip(c);
}

namespace {

// One Brandes source accumulation into `delta_out` (per-thread buffer).
void BrandesFromSource(const DenseAdj& da, int64_t s,
                       std::vector<double>* delta_out) {
  const int64_t n = da.size();
  std::vector<int64_t> dist(n, -1);
  std::vector<double> sigma(n, 0.0), delta(n, 0.0);
  std::vector<std::vector<int64_t>> preds(n);
  std::vector<int64_t> order;
  order.reserve(64);

  dist[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  for (size_t head = 0; head < order.size(); ++head) {
    const int64_t u = order[head];
    for (int64_t v : da.adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) {
        sigma[v] += sigma[u];
        preds[v].push_back(u);
      }
    }
  }
  // Dependency accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int64_t w = *it;
    for (int64_t p : preds[w]) {
      delta[p] += (sigma[p] / sigma[w]) * (1.0 + delta[w]);
    }
    if (w != s) (*delta_out)[w] += delta[w];
  }
}

NodeValues BetweennessImpl(const DenseAdj& da,
                           const std::vector<int64_t>& sources, double scale,
                           bool halve_pairs) {
  const int64_t n = da.size();
  const int threads = NumThreads();
  std::vector<std::vector<double>> partial(threads,
                                           std::vector<double>(n, 0.0));
#pragma omp parallel num_threads(threads)
  {
    const int t = omp_get_thread_num();
#pragma omp for schedule(dynamic, 4)
    for (size_t i = 0; i < sources.size(); ++i) {
      BrandesFromSource(da, sources[i], &partial[t]);
    }
  }
  std::vector<double> bc(n, 0.0);
  for (int t = 0; t < threads; ++t) {
    for (int64_t v = 0; v < n; ++v) bc[v] += partial[t][v];
  }
  // Undirected: each pair was counted from both endpoints.
  const double factor = (halve_pairs ? 0.5 : 1.0) * scale;
  for (int64_t v = 0; v < n; ++v) bc[v] *= factor;
  return da.ni.Zip(bc);
}

}  // namespace

NodeValues BetweennessCentrality(const UndirectedGraph& g) {
  const int64_t n = g.NumNodes();
  std::vector<int64_t> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  return BetweennessImpl(DenseAdj(g), sources, 1.0, /*halve_pairs=*/true);
}

NodeValues BetweennessCentralityDirected(const DirectedGraph& g) {
  const int64_t n = g.NumNodes();
  std::vector<int64_t> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  return BetweennessImpl(DenseAdj(g), sources, 1.0, /*halve_pairs=*/false);
}

NodeValues ApproxBetweennessCentrality(const UndirectedGraph& g,
                                       int64_t samples, uint64_t seed) {
  const int64_t n = g.NumNodes();
  if (n == 0) return {};
  samples = std::min(samples, n);
  std::vector<int64_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(all[i], all[rng.UniformInt(i, n - 1)]);
  }
  all.resize(samples);
  return BetweennessImpl(DenseAdj(g), all,
                         static_cast<double>(n) / static_cast<double>(samples),
                         /*halve_pairs=*/true);
}

Result<NodeValues> EigenvectorCentrality(const UndirectedGraph& g,
                                         int max_iters, double tol) {
  if (max_iters < 1) {
    return Status::InvalidArgument("EigenvectorCentrality: max_iters >= 1");
  }
  const DenseAdj da(g);
  const int64_t n = da.size();
  if (n == 0) return NodeValues{};
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n))), next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Iterate on A + I rather than A: the shift leaves the principal
    // eigenvector unchanged but kills the period-2 oscillation plain power
    // iteration exhibits on bipartite graphs (e.g. stars).
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = x[i];
      for (int64_t j : da.adj[i]) acc += x[j];
      next[i] = acc;
    });
    double norm = 0.0;
    for (int64_t i = 0; i < n; ++i) norm += next[i] * next[i];
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      // No edges: centrality is uniform zero.
      std::fill(next.begin(), next.end(), 0.0);
      return da.ni.Zip(next);
    }
    double delta = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - x[i]);
    }
    x.swap(next);
    if (tol > 0 && delta < tol) break;
  }
  return da.ni.Zip(x);
}

NodeInts Eccentricities(const UndirectedGraph& g) {
  const DenseAdj da(g);
  const int64_t n = da.size();
  std::vector<int64_t> ecc(n, 0);
#pragma omp parallel
  {
    std::vector<int64_t> dist;
#pragma omp for schedule(dynamic, 16)
    for (int64_t u = 0; u < n; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      int64_t e = 0;
      for (int64_t v : order) e = std::max(e, dist[v]);
      ecc[u] = e;
    }
  }
  return da.ni.Zip(ecc);
}

}  // namespace ringo
