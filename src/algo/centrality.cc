#include "algo/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Legacy adjacency scaffold: dense neighbor vectors copied out of the hash
// table, self-loops stripped (they never lie on a shortest path). Kept as
// the reference oracle behind csr::SetEnabled(false).
struct LegacyAdj {
  NodeIndex ni;
  std::vector<std::vector<int64_t>> adj;

  explicit LegacyAdj(const UndirectedGraph& g) : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    adj.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      const auto& nbrs = g.GetNode(ni.IdOf(i))->nbrs;
      adj[i].reserve(nbrs.size());
      for (NodeId v : nbrs) {
        const int64_t j = ni.IndexOf(v);
        if (j != i) adj[i].push_back(j);
      }
    });
  }

  // Directed view: traversal follows out-edges only.
  explicit LegacyAdj(const DirectedGraph& g) : ni(NodeIndex::FromGraph(g)) {
    const int64_t n = ni.size();
    adj.resize(n);
    ParallelForDynamic(0, n, [&](int64_t i) {
      const auto& out = g.GetNode(ni.IdOf(i))->out;
      adj[i].reserve(out.size());
      for (NodeId v : out) {
        const int64_t j = ni.IndexOf(v);
        if (j != i) adj[i].push_back(j);
      }
    });
  }

  int64_t size() const { return ni.size(); }
  std::span<const int64_t> nbrs(int64_t i) const {
    return std::span<const int64_t>(adj[i]);
  }
};

// CSR adjacency: spans straight off the pinned AlgoView snapshot. Spans may
// contain a self-loop entry; the traversal kernels below are immune to it
// (a self edge never relaxes dist or sigma) and the eigenvector kernel
// skips it explicitly, so both scaffolds feed identical arithmetic.
struct CsrAdj {
  std::shared_ptr<const AlgoView> view;

  explicit CsrAdj(std::shared_ptr<const AlgoView> v) : view(std::move(v)) {}

  int64_t size() const { return view->NumNodes(); }
  // NbrSpan (not std::span): on a compressed base the run lives in pooled
  // scratch that must stay pinned while the caller iterates it.
  NbrSpan nbrs(int64_t i) const { return view->Out(i); }
  const NodeIndex& node_index() const { return view->node_index(); }
};

// BFS from `src`; fills dist (-1 = unreachable) and returns the visit
// order. A self-loop entry in nbrs(u) is a no-op: dist[u] is already set.
template <typename Adj>
std::vector<int64_t> DenseBfs(const Adj& da, int64_t src,
                              std::vector<int64_t>* dist) {
  dist->assign(da.size(), -1);
  std::vector<int64_t> order;
  order.reserve(64);
  (*dist)[src] = 0;
  order.push_back(src);
  for (size_t head = 0; head < order.size(); ++head) {
    const int64_t u = order[head];
    for (int64_t v : da.nbrs(u)) {
      if ((*dist)[v] < 0) {
        (*dist)[v] = (*dist)[u] + 1;
        order.push_back(v);
      }
    }
  }
  return order;
}

NodeValues DegreeCentralityImpl(const NodeIndex& ni,
                                const std::vector<int64_t>& deg) {
  const int64_t n = ni.size();
  std::vector<double> c(n, 0.0);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  ParallelFor(0, n,
              [&](int64_t i) { c[i] = static_cast<double>(deg[i]) / denom; });
  return ni.Zip(c);
}

}  // namespace

NodeValues DegreeCentrality(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    std::vector<int64_t> deg(view->NumNodes());
    for (int64_t i = 0; i < view->NumNodes(); ++i) deg[i] = view->OutDegree(i);
    return DegreeCentralityImpl(view->node_index(), deg);
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.Degree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

NodeValues InDegreeCentrality(const DirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    std::vector<int64_t> deg(view->NumNodes());
    for (int64_t i = 0; i < view->NumNodes(); ++i) deg[i] = view->InDegree(i);
    return DegreeCentralityImpl(view->node_index(), deg);
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.InDegree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

NodeValues OutDegreeCentrality(const DirectedGraph& g) {
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    std::vector<int64_t> deg(view->NumNodes());
    for (int64_t i = 0; i < view->NumNodes(); ++i) deg[i] = view->OutDegree(i);
    return DegreeCentralityImpl(view->node_index(), deg);
  }
  const NodeIndex ni = NodeIndex::FromGraph(g);
  std::vector<int64_t> deg(ni.size());
  for (int64_t i = 0; i < ni.size(); ++i) deg[i] = g.OutDegree(ni.IdOf(i));
  return DegreeCentralityImpl(ni, deg);
}

namespace {

// BFS-per-node measures run over fixed blocks of sources so the dist
// scratch is allocated once per block, not once per BFS. Blocks go
// through ParallelForDynamic — never a raw `#pragma omp parallel`,
// whose fork/join TSan cannot see (util/parallel.h) — and each output
// slot depends only on its own source, so blocking can't change results.
constexpr int64_t kBfsSourcesPerBlock = 16;

template <typename Adj>
std::vector<double> ClosenessKernel(const Adj& da) {
  const int64_t n = da.size();
  std::vector<double> c(n, 0.0);
  const int64_t nblocks =
      (n + kBfsSourcesPerBlock - 1) / kBfsSourcesPerBlock;
  ParallelForDynamic(0, nblocks, [&](int64_t b) {
    std::vector<int64_t> dist;
    const int64_t lo = b * kBfsSourcesPerBlock;
    const int64_t hi = std::min(n, lo + kBfsSourcesPerBlock);
    for (int64_t u = lo; u < hi; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      int64_t total = 0;
      for (int64_t v : order) total += dist[v];
      const int64_t r = static_cast<int64_t>(order.size());
      if (total > 0 && n > 1) {
        // Wasserman–Faust correction for disconnected graphs.
        c[u] = (static_cast<double>(r - 1) / total) *
               (static_cast<double>(r - 1) / static_cast<double>(n - 1));
      }
    }
  }, /*chunk=*/1);
  return c;
}

template <typename Graph>
NodeValues ClosenessDispatch(const Graph& g) {
  trace::Span span("Algo/Closeness");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return da.node_index().Zip(ClosenessKernel(da));
  }
  const LegacyAdj da(g);
  return da.ni.Zip(ClosenessKernel(da));
}

}  // namespace

NodeValues ClosenessCentrality(const UndirectedGraph& g) {
  return ClosenessDispatch(g);
}

NodeValues ClosenessCentralityDirected(const DirectedGraph& g) {
  return ClosenessDispatch(g);
}

namespace {

// Shared body for the sampled-closeness estimator; pivots are dense
// indices, chosen identically on both paths (dense index i = i-th smallest
// node id under either scaffold).
template <typename Adj>
std::vector<double> ApproxClosenessKernel(const Adj& da, int64_t samples,
                                          uint64_t seed) {
  const int64_t n = da.size();
  std::vector<int64_t> pivots(n);
  std::iota(pivots.begin(), pivots.end(), 0);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(pivots[i], pivots[rng.UniformInt(i, n - 1)]);
  }
  pivots.resize(samples);

  // Accumulate distances from each pivot to all nodes.
  std::vector<double> sum(n, 0.0);
  std::vector<int64_t> reached(n, 0);
  std::vector<int64_t> dist;
  for (int64_t p : pivots) {
    DenseBfs(da, p, &dist);
    for (int64_t v = 0; v < n; ++v) {
      if (dist[v] > 0) {  // Exclude the pivot's own zero distance.
        sum[v] += dist[v];
        ++reached[v];
      }
    }
  }
  std::vector<double> c(n, 0.0);
  for (int64_t v = 0; v < n; ++v) {
    if (sum[v] > 0 && reached[v] > 0 && n > 1) {
      // avg estimates v's mean distance to the other nodes it can reach;
      // r_est estimates |reachable set| (the +1 restores v itself). With
      // samples == n this reproduces ClosenessCentrality exactly.
      const double avg = sum[v] / static_cast<double>(reached[v]);
      const double r_est = static_cast<double>(reached[v]) /
                               static_cast<double>(samples) * n +
                           1.0;
      c[v] = (1.0 / avg) * ((r_est - 1) / static_cast<double>(n - 1));
    }
  }
  return c;
}

}  // namespace

NodeValues ApproxClosenessCentrality(const UndirectedGraph& g,
                                     int64_t samples, uint64_t seed) {
  const int64_t n = g.NumNodes();
  if (n == 0) return {};
  samples = std::min(samples, n);
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return da.node_index().Zip(ApproxClosenessKernel(da, samples, seed));
  }
  const LegacyAdj da(g);
  return da.ni.Zip(ApproxClosenessKernel(da, samples, seed));
}

namespace {

template <typename Adj>
std::vector<double> HarmonicKernel(const Adj& da) {
  const int64_t n = da.size();
  std::vector<double> c(n, 0.0);
  const int64_t nblocks =
      (n + kBfsSourcesPerBlock - 1) / kBfsSourcesPerBlock;
  ParallelForDynamic(0, nblocks, [&](int64_t b) {
    std::vector<int64_t> dist;
    const int64_t lo = b * kBfsSourcesPerBlock;
    const int64_t hi = std::min(n, lo + kBfsSourcesPerBlock);
    for (int64_t u = lo; u < hi; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      double acc = 0.0;
      for (int64_t v : order) {
        if (v != u) acc += 1.0 / static_cast<double>(dist[v]);
      }
      c[u] = n > 1 ? acc / static_cast<double>(n - 1) : 0.0;
    }
  }, /*chunk=*/1);
  return c;
}

}  // namespace

NodeValues HarmonicCentrality(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return da.node_index().Zip(HarmonicKernel(da));
  }
  const LegacyAdj da(g);
  return da.ni.Zip(HarmonicKernel(da));
}

namespace {

// One Brandes source accumulation into `delta_out`. A self-loop entry never
// fires either branch (dist[v] is set and != dist[u] + 1 for v == u), so
// CSR spans need no filtering.
template <typename Adj>
void BrandesFromSource(const Adj& da, int64_t s,
                       std::vector<double>* delta_out) {
  const int64_t n = da.size();
  std::vector<int64_t> dist(n, -1);
  std::vector<double> sigma(n, 0.0), delta(n, 0.0);
  std::vector<std::vector<int64_t>> preds(n);
  std::vector<int64_t> order;
  order.reserve(64);

  dist[s] = 0;
  sigma[s] = 1.0;
  order.push_back(s);
  for (size_t head = 0; head < order.size(); ++head) {
    const int64_t u = order[head];
    for (int64_t v : da.nbrs(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        order.push_back(v);
      }
      if (dist[v] == dist[u] + 1) {
        sigma[v] += sigma[u];
        preds[v].push_back(u);
      }
    }
  }
  // Dependency accumulation in reverse BFS order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int64_t w = *it;
    for (int64_t p : preds[w]) {
      delta[p] += (sigma[p] / sigma[w]) * (1.0 + delta[w]);
    }
    if (w != s) (*delta_out)[w] += delta[w];
  }
}

// Sources are grouped into fixed blocks of 32; each block accumulates its
// Brandes contributions sequentially into its own buffer, and buffers merge
// in block order. Which thread ran which block no longer matters, so the
// result is bit-identical at every thread count (the old per-thread-buffer
// merge depended on the dynamic schedule).
template <typename Adj>
std::vector<double> BetweennessKernel(const Adj& da,
                                      const std::vector<int64_t>& sources,
                                      double scale, bool halve_pairs) {
  const int64_t n = da.size();
  constexpr int64_t kSourcesPerBlock = 32;
  const int64_t nsources = static_cast<int64_t>(sources.size());
  const int64_t nblocks =
      (nsources + kSourcesPerBlock - 1) / kSourcesPerBlock;
  std::vector<std::vector<double>> block_sum(nblocks);
  ParallelForDynamic(0, nblocks, [&](int64_t b) {
    std::vector<double> acc(n, 0.0);
    const int64_t lo = b * kSourcesPerBlock;
    const int64_t hi = std::min(lo + kSourcesPerBlock, nsources);
    for (int64_t i = lo; i < hi; ++i) {
      BrandesFromSource(da, sources[i], &acc);
    }
    block_sum[b] = std::move(acc);
  });
  // Undirected: each pair was counted from both endpoints.
  const double factor = (halve_pairs ? 0.5 : 1.0) * scale;
  std::vector<double> bc(n, 0.0);
  ParallelFor(0, n, [&](int64_t v) {
    double acc = 0.0;
    for (int64_t b = 0; b < nblocks; ++b) acc += block_sum[b][v];
    bc[v] = acc * factor;
  });
  return bc;
}

template <typename Graph>
NodeValues BetweennessDispatch(const Graph& g,
                               const std::vector<int64_t>& sources,
                               double scale, bool halve_pairs) {
  trace::Span span("Algo/Betweenness");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("sources", static_cast<int64_t>(sources.size()));
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return da.node_index().Zip(
        BetweennessKernel(da, sources, scale, halve_pairs));
  }
  const LegacyAdj da(g);
  return da.ni.Zip(BetweennessKernel(da, sources, scale, halve_pairs));
}

}  // namespace

NodeValues BetweennessCentrality(const UndirectedGraph& g) {
  const int64_t n = g.NumNodes();
  std::vector<int64_t> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  return BetweennessDispatch(g, sources, 1.0, /*halve_pairs=*/true);
}

NodeValues BetweennessCentralityDirected(const DirectedGraph& g) {
  const int64_t n = g.NumNodes();
  std::vector<int64_t> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  return BetweennessDispatch(g, sources, 1.0, /*halve_pairs=*/false);
}

NodeValues ApproxBetweennessCentrality(const UndirectedGraph& g,
                                       int64_t samples, uint64_t seed) {
  const int64_t n = g.NumNodes();
  if (n == 0) return {};
  samples = std::min(samples, n);
  std::vector<int64_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  Rng rng(seed);
  for (int64_t i = 0; i < samples; ++i) {
    std::swap(all[i], all[rng.UniformInt(i, n - 1)]);
  }
  all.resize(samples);
  return BetweennessDispatch(
      g, all, static_cast<double>(n) / static_cast<double>(samples),
      /*halve_pairs=*/true);
}

namespace {

template <typename Adj>
Result<NodeValues> EigenvectorKernel(const Adj& da, const NodeIndex& ni,
                                     int max_iters, double tol) {
  const int64_t n = da.size();
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n))), next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Iterate on A + I rather than A: the shift leaves the principal
    // eigenvector unchanged but kills the period-2 oscillation plain power
    // iteration exhibits on bipartite graphs (e.g. stars). Self-loop span
    // entries are skipped — the legacy scaffold strips them at build time.
    ParallelForDynamic(0, n, [&](int64_t i) {
      double acc = x[i];
      for (int64_t j : da.nbrs(i)) {
        if (j != i) acc += x[j];
      }
      next[i] = acc;
    });
    double norm = 0.0;
    for (int64_t i = 0; i < n; ++i) norm += next[i] * next[i];
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      // No edges: centrality is uniform zero.
      std::fill(next.begin(), next.end(), 0.0);
      return ni.Zip(next);
    }
    double delta = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - x[i]);
    }
    x.swap(next);
    if (tol > 0 && delta < tol) break;
  }
  return ni.Zip(x);
}

template <typename Adj>
std::vector<int64_t> EccentricityKernel(const Adj& da) {
  const int64_t n = da.size();
  std::vector<int64_t> ecc(n, 0);
  const int64_t nblocks =
      (n + kBfsSourcesPerBlock - 1) / kBfsSourcesPerBlock;
  ParallelForDynamic(0, nblocks, [&](int64_t b) {
    std::vector<int64_t> dist;
    const int64_t lo = b * kBfsSourcesPerBlock;
    const int64_t hi = std::min(n, lo + kBfsSourcesPerBlock);
    for (int64_t u = lo; u < hi; ++u) {
      const std::vector<int64_t> order = DenseBfs(da, u, &dist);
      int64_t e = 0;
      for (int64_t v : order) e = std::max(e, dist[v]);
      ecc[u] = e;
    }
  }, /*chunk=*/1);
  return ecc;
}

}  // namespace

Result<NodeValues> EigenvectorCentrality(const UndirectedGraph& g,
                                         int max_iters, double tol) {
  if (max_iters < 1) {
    return Status::InvalidArgument("EigenvectorCentrality: max_iters >= 1");
  }
  if (g.NumNodes() == 0) return NodeValues{};
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return EigenvectorKernel(da, da.node_index(), max_iters, tol);
  }
  const LegacyAdj da(g);
  return EigenvectorKernel(da, da.ni, max_iters, tol);
}

NodeInts Eccentricities(const UndirectedGraph& g) {
  if (csr::Enabled()) {
    const CsrAdj da(AlgoView::Of(g));
    return da.node_index().Zip(EccentricityKernel(da));
  }
  const LegacyAdj da(g);
  return da.ni.Zip(EccentricityKernel(da));
}

}  // namespace ringo
