// Kill switch for incremental delta-CSR snapshot maintenance (DESIGN.md
// §11).
//
// With the switch on (default), AlgoView::Of patches a stale cached
// snapshot forward by replaying the graph's delta journal — O(batch +
// touched nodes) — and compacts back into a fresh dense base when the
// patched fraction crosses the compaction threshold. With the switch off,
// every stale snapshot is rebuilt from scratch (the pre-§11 behavior); that
// path is the parity oracle proving delta-patched views are structurally
// identical to full rebuilds. Same discipline as csr::SetEnabled and
// radix::SetEnabled.
#ifndef RINGO_ALGO_DELTACSR_SWITCH_H_
#define RINGO_ALGO_DELTACSR_SWITCH_H_

namespace ringo {
namespace deltacsr {

// True (default) = stale cached views are delta-patched when the journal
// covers the gap; false = always full rebuild. Reads are relaxed atomics,
// safe from any thread; toggle only between algorithm calls.
bool Enabled();
void SetEnabled(bool on);

// Compaction threshold: once the fraction of arcs served from patch runs
// would exceed this, the next refresh folds everything into a fresh dense
// base instead (counter "algo_view/compact"). Exposed for tests that need
// to force or forbid compaction deterministically.
double CompactionFraction();
void SetCompactionFraction(double fraction);

// RAII toggles for tests and ablations.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

class ScopedCompactionFraction {
 public:
  explicit ScopedCompactionFraction(double fraction)
      : prev_(CompactionFraction()) {
    SetCompactionFraction(fraction);
  }
  ~ScopedCompactionFraction() { SetCompactionFraction(prev_); }
  ScopedCompactionFraction(const ScopedCompactionFraction&) = delete;
  ScopedCompactionFraction& operator=(const ScopedCompactionFraction&) =
      delete;

 private:
  double prev_;
};

}  // namespace deltacsr
}  // namespace ringo

#endif  // RINGO_ALGO_DELTACSR_SWITCH_H_
