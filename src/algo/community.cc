#include "algo/community.h"

#include <algorithm>
#include <numeric>
#include <span>

#include "algo/algo_view.h"
#include "algo/csr_switch.h"
#include "algo/node_index.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Shared asynchronous label-propagation rounds. `nbrs_of(u)` yields u's
// neighbors as an ascending dense-index span; entries equal to u (self-loop
// in a CSR span) are skipped, matching the legacy scaffold which strips
// them at build time. The visit shuffle, the dense-scratch frequency count,
// and the (count desc, label asc) argmax are all order-independent given
// the same adjacency content, so the legacy and CSR paths produce identical
// labels for a given seed.
template <typename NbrsFn>
std::vector<int64_t> LabelPropKernel(int64_t n, NbrsFn&& nbrs_of,
                                     int max_rounds, uint64_t seed) {
  std::vector<int64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<int64_t> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  Rng rng(seed);

  // Dense frequency scratch: count[l] for labels seen this node, with a
  // touched list for O(deg) reset (labels are always in [0, n)).
  std::vector<int64_t> count(n, 0);
  std::vector<int64_t> touched;
  for (int round = 0; round < max_rounds; ++round) {
    // Shuffle the visiting order (asynchronous updates).
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(visit[i], visit[rng.UniformInt(0, i)]);
    }
    bool changed = false;
    for (int64_t u : visit) {
      touched.clear();
      for (int64_t v : nbrs_of(u)) {
        if (v == u) continue;
        const int64_t l = label[v];
        if (count[l]++ == 0) touched.push_back(l);
      }
      if (touched.empty()) continue;  // Isolated (or self-loop-only) node.
      int64_t best_label = label[u], best_count = 0;
      for (int64_t l : touched) {
        if (count[l] > best_count ||
            (count[l] == best_count && l < best_label)) {
          best_count = count[l];
          best_label = l;
        }
      }
      for (int64_t l : touched) count[l] = 0;
      if (best_label != label[u]) {
        label[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Renumber labels densely by first occurrence in index order.
  FlatHashMap<int64_t, int64_t> dense;
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    out[i] = *dense.Insert(label[i], dense.size()).first;
  }
  return out;
}

}  // namespace

NodeInts LabelPropagation(const UndirectedGraph& g, int max_rounds,
                          uint64_t seed) {
  trace::Span span("Algo/LabelPropagation");
  span.AddAttr("nodes", g.NumNodes());
  span.AddAttr("edges", g.NumEdges());
  span.AddAttr("csr", static_cast<int64_t>(csr::Enabled() ? 1 : 0));
  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const std::vector<int64_t> labels = LabelPropKernel(
        view->NumNodes(), [&](int64_t u) { return view->Out(u); }, max_rounds,
        seed);
    return view->node_index().Zip(labels);
  }
  // Legacy oracle: per-call dense adjacency, one hash probe per edge.
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<std::vector<int64_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (NodeId v : g.GetNode(ni.IdOf(i))->nbrs) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) adj[i].push_back(j);
    }
  }
  const std::vector<int64_t> labels = LabelPropKernel(
      n, [&](int64_t u) { return std::span<const int64_t>(adj[u]); },
      max_rounds, seed);
  return ni.Zip(labels);
}

double Modularity(const UndirectedGraph& g, const NodeInts& labels) {
  const double m2 = 2.0 * static_cast<double>(g.NumEdges());
  if (m2 == 0) return 0.0;

  if (csr::Enabled()) {
    const std::shared_ptr<const AlgoView> view = AlgoView::Of(g);
    const int64_t n = view->NumNodes();
    std::vector<int64_t> lab(n, 0);
    int64_t max_label = 0;
    for (const auto& [id, l] : labels) {
      const int64_t i = view->IndexOf(id);
      if (i >= 0) lab[i] = l;
      max_label = std::max(max_label, l);
    }
    std::vector<double> internal2(max_label + 1, 0.0);
    std::vector<double> deg_sum(max_label + 1, 0.0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t lu = lab[i];
      for (const int64_t v : view->Out(i)) {
        // A self-loop contributes 2 to its endpoint's degree and 2 to the
        // community-internal sum (A_uu = 2 in the undirected adjacency
        // convention); the span lists it once.
        const double w = v == i ? 2.0 : 1.0;
        deg_sum[lu] += w;
        if (lab[v] == lu) internal2[lu] += w;
      }
    }
    double q = 0.0;
    for (int64_t c = 0; c <= max_label; ++c) {
      q += internal2[c] / m2 - (deg_sum[c] / m2) * (deg_sum[c] / m2);
    }
    return q;
  }

  FlatHashMap<NodeId, int64_t> label_of;
  int64_t max_label = 0;
  for (const auto& [id, l] : labels) {
    label_of.Insert(id, l);
    max_label = std::max(max_label, l);
  }
  // Q = sum_c [ in_c / 2m - (deg_c / 2m)^2 ].
  std::vector<double> internal2(max_label + 1, 0.0);  // 2 * internal edges.
  std::vector<double> deg_sum(max_label + 1, 0.0);
  g.ForEachNode([&](NodeId u, const UndirectedGraph::NodeData& nd) {
    const int64_t lu = *label_of.Find(u);
    for (NodeId v : nd.nbrs) {
      const double w = v == u ? 2.0 : 1.0;  // Self-loop counts twice.
      deg_sum[lu] += w;
      if (*label_of.Find(v) == lu) internal2[lu] += w;
    }
  });
  double q = 0.0;
  for (int64_t c = 0; c <= max_label; ++c) {
    q += internal2[c] / m2 - (deg_sum[c] / m2) * (deg_sum[c] / m2);
  }
  return q;
}

}  // namespace ringo
