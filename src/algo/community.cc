#include "algo/community.h"

#include <algorithm>
#include <numeric>

#include "algo/node_index.h"
#include "util/rng.h"

namespace ringo {

NodeInts LabelPropagation(const UndirectedGraph& g, int max_rounds,
                          uint64_t seed) {
  const NodeIndex ni = NodeIndex::FromGraph(g);
  const int64_t n = ni.size();
  std::vector<std::vector<int64_t>> adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (NodeId v : g.GetNode(ni.IdOf(i))->nbrs) {
      const int64_t j = ni.IndexOf(v);
      if (j != i) adj[i].push_back(j);
    }
  }

  std::vector<int64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<int64_t> visit(n);
  std::iota(visit.begin(), visit.end(), 0);
  Rng rng(seed);

  FlatHashMap<int64_t, int64_t> freq;
  for (int round = 0; round < max_rounds; ++round) {
    // Shuffle the visiting order (asynchronous updates).
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(visit[i], visit[rng.UniformInt(0, i)]);
    }
    bool changed = false;
    for (int64_t u : visit) {
      if (adj[u].empty()) continue;
      freq.Clear();
      for (int64_t v : adj[u]) ++freq.GetOrInsert(label[v]);
      int64_t best_label = label[u], best_count = 0;
      freq.ForEach([&](const int64_t& l, const int64_t& c) {
        if (c > best_count || (c == best_count && l < best_label)) {
          best_count = c;
          best_label = l;
        }
      });
      if (best_label != label[u]) {
        label[u] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Renumber labels densely by first occurrence in index order.
  FlatHashMap<int64_t, int64_t> dense;
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    out[i] = *dense.Insert(label[i], dense.size()).first;
  }
  return ni.Zip(out);
}

double Modularity(const UndirectedGraph& g, const NodeInts& labels) {
  const double m2 = 2.0 * static_cast<double>(g.NumEdges());
  if (m2 == 0) return 0.0;
  FlatHashMap<NodeId, int64_t> label_of;
  int64_t max_label = 0;
  for (const auto& [id, l] : labels) {
    label_of.Insert(id, l);
    max_label = std::max(max_label, l);
  }
  // Q = sum_c [ in_c / 2m - (deg_c / 2m)^2 ].
  std::vector<double> internal2(max_label + 1, 0.0);  // 2 * internal edges.
  std::vector<double> deg_sum(max_label + 1, 0.0);
  g.ForEachNode([&](NodeId u, const UndirectedGraph::NodeData& nd) {
    const int64_t lu = *label_of.Find(u);
    for (NodeId v : nd.nbrs) {
      deg_sum[lu] += 1.0;
      if (*label_of.Find(v) == lu) internal2[lu] += 1.0;
    }
  });
  double q = 0.0;
  for (int64_t c = 0; c <= max_label; ++c) {
    q += internal2[c] / m2 - (deg_sum[c] / m2) * (deg_sum[c] / m2);
  }
  return q;
}

}  // namespace ringo
