// Breadth-first search primitives over Ringo graphs. BFS is the substrate
// for unweighted shortest paths (Table 6's SSSP row), connectivity,
// closeness centrality and the diameter estimators.
#ifndef RINGO_ALGO_BFS_H_
#define RINGO_ALGO_BFS_H_

#include <vector>

#include "algo/algo_defs.h"
#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"

namespace ringo {

// Edge directions a directed traversal may follow.
enum class BfsDir : char {
  kOut,    // Follow out-edges (forward reachability).
  kIn,     // Follow in-edges (backward reachability).
  kBoth,   // Ignore direction (weak reachability).
};

// Hop distances from `src` to every reachable node, as (id, hops) sorted by
// id. Unreachable nodes are omitted; a missing src yields an empty result.
NodeInts BfsDistances(const DirectedGraph& g, NodeId src,
                      BfsDir dir = BfsDir::kOut);
NodeInts BfsDistances(const UndirectedGraph& g, NodeId src);

// The set of nodes reachable from `src` (including src), ascending.
std::vector<NodeId> BfsReachable(const DirectedGraph& g, NodeId src,
                                 BfsDir dir = BfsDir::kOut);
std::vector<NodeId> BfsReachable(const UndirectedGraph& g, NodeId src);

// One shortest path src→dst as a node sequence (empty when unreachable or
// either endpoint is missing).
std::vector<NodeId> ShortestPath(const DirectedGraph& g, NodeId src,
                                 NodeId dst, BfsDir dir = BfsDir::kOut);

// Maximum BFS depth reached from src (-1 if src missing).
int64_t BfsDepth(const DirectedGraph& g, NodeId src, BfsDir dir = BfsDir::kOut);
int64_t BfsDepth(const UndirectedGraph& g, NodeId src);

// Iterative depth-first traversal from `src` following out-edges; children
// are visited in ascending id order, so the orders are deterministic.
// Empty when src is missing.
std::vector<NodeId> DfsPreorder(const DirectedGraph& g, NodeId src);
std::vector<NodeId> DfsPostorder(const DirectedGraph& g, NodeId src);

}  // namespace ringo

#endif  // RINGO_ALGO_BFS_H_
