#include "algo/deltacsr_switch.h"

#include <atomic>

namespace ringo {
namespace deltacsr {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<double> g_compaction_fraction{0.15};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

double CompactionFraction() {
  return g_compaction_fraction.load(std::memory_order_relaxed);
}
void SetCompactionFraction(double fraction) {
  g_compaction_fraction.store(fraction, std::memory_order_relaxed);
}

}  // namespace deltacsr
}  // namespace ringo
