// Fixed-size worker pool with a bounded admission queue (DESIGN.md §12).
//
// TrySubmit either enqueues the task (queue depth < capacity) or refuses
// immediately — it never blocks the caller and never queues unboundedly.
// The serving engine turns a refusal into a typed kOverloaded Status, so
// overload degrades into fast rejections instead of unbounded latency
// (the classic shed-on-overload policy).
//
// Shutdown() stops admission, drains every task already admitted, and
// joins the workers; the destructor calls it. Tasks admitted before
// Shutdown always run, so promises held by queued closures are always
// fulfilled.
#ifndef RINGO_SERVE_WORKER_POOL_H_
#define RINGO_SERVE_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ringo {
namespace serve {

class WorkerPool {
 public:
  // Spawns `num_workers` threads (>=1) serving a queue bounded at
  // `queue_capacity` pending tasks (>=0; 0 admits only when a worker is
  // guaranteed to pick the task up from the queue, i.e. never — use >=1).
  WorkerPool(int num_workers, int64_t queue_capacity);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues `task` unless the queue is full or the pool is shutting
  // down; returns whether the task was admitted.
  bool TrySubmit(std::function<void()> task);

  // Stops admission, runs every queued task, joins workers. Idempotent.
  void Shutdown();

  // Tasks admitted but not yet picked up by a worker.
  int64_t QueueDepth() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  int64_t queue_capacity() const { return capacity_; }

 private:
  void WorkerLoop();

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace ringo

#endif  // RINGO_SERVE_WORKER_POOL_H_
