#include "serve/query_mix.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "util/cancel.h"

namespace ringo {
namespace serve {

namespace {

// Folds one resolved query into stats (latencies under the caller's lock).
void Record(const QueryResult& r, LoadStats* stats) {
  if (r.status.ok()) {
    ++stats->ok;
    stats->latencies_ms.push_back(r.latency_ms);
  } else if (r.status.IsOverloaded()) {
    ++stats->shed;
  } else if (r.status.IsDeadlineExceeded()) {
    ++stats->deadline_miss;
  } else {
    ++stats->failed;
  }
}

}  // namespace

QueryMixGenerator::QueryMixGenerator(uint64_t seed, MixConfig config)
    : rng_(seed), config_(config) {}

Query QueryMixGenerator::Next() {
  const double total = config_.bfs_weight + config_.pagerank_weight +
                       config_.table_weight;
  const double roll = rng_.UniformReal() * (total > 0 ? total : 1.0);
  Query q;
  if (roll < config_.bfs_weight) {
    q.kind = QueryKind::kBfs;
    if (!config_.bfs_sources.empty()) {
      q.source = config_.bfs_sources[rng_.UniformInt(
          0, static_cast<int64_t>(config_.bfs_sources.size()) - 1)];
    } else if (config_.max_node_id > 0) {
      q.source = rng_.UniformInt(0, config_.max_node_id);
    }
  } else if (roll < config_.bfs_weight + config_.pagerank_weight) {
    q.kind = QueryKind::kPageRank;
    q.iters = config_.pagerank_iters;
  } else {
    q.kind = QueryKind::kTableTopK;
    q.k = config_.topk_k;
  }
  q.deadline_ms = config_.deadline_ms;
  return q;
}

double LoadStats::PercentileMs(double p) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LoadStats RunClosedLoop(Engine& engine, const Session& session,
                        const MixConfig& config, uint64_t seed, int clients,
                        int64_t queries_per_client) {
  LoadStats stats;
  std::mutex mu;
  const int64_t t0 = cancel::NowNanos();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      QueryMixGenerator gen(seed + static_cast<uint64_t>(c) * 0x9e3779b9ull,
                            config);
      LoadStats local;
      for (int64_t i = 0; i < queries_per_client; ++i) {
        ++local.issued;
        QueryResult r = engine.Submit(session, gen.Next()).get();
        Record(r, &local);
      }
      std::lock_guard<std::mutex> lk(mu);
      stats.issued += local.issued;
      stats.ok += local.ok;
      stats.shed += local.shed;
      stats.deadline_miss += local.deadline_miss;
      stats.failed += local.failed;
      stats.latencies_ms.insert(stats.latencies_ms.end(),
                                local.latencies_ms.begin(),
                                local.latencies_ms.end());
    });
  }
  for (std::thread& t : threads) t.join();
  stats.elapsed_s = static_cast<double>(cancel::NowNanos() - t0) / 1e9;
  return stats;
}

LoadStats RunOpenLoop(Engine& engine, const Session& session,
                      const MixConfig& config, uint64_t seed, double rate_qps,
                      int64_t total) {
  LoadStats stats;
  QueryMixGenerator gen(seed, config);
  const int64_t t0 = cancel::NowNanos();
  const double interval_ns = rate_qps > 0 ? 1e9 / rate_qps : 0.0;
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(total);
  for (int64_t i = 0; i < total; ++i) {
    ++stats.issued;
    futures.push_back(engine.Submit(session, gen.Next()));
    if (interval_ns > 0) {
      // Pace against the schedule, not the previous send, so slow sends
      // don't silently lower the offered rate.
      const int64_t next_ns =
          t0 + static_cast<int64_t>(interval_ns * static_cast<double>(i + 1));
      const int64_t now = cancel::NowNanos();
      if (now < next_ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(next_ns - now));
      }
    }
  }
  for (std::future<QueryResult>& f : futures) {
    Record(f.get(), &stats);
  }
  stats.elapsed_s = static_cast<double>(cancel::NowNanos() - t0) / 1e9;
  return stats;
}

}  // namespace serve
}  // namespace ringo
