#include "serve/engine.h"

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "algo/algo_view.h"
#include "algo/bfs_engine.h"
#include "algo/pagerank.h"
#include "query/query.h"
#include "table/table.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ringo {
namespace serve {

namespace {

// Runs one query against its pinned context. Pure function of the context
// (plus wall time for kSleep); fills rows/checksum/status.
void RunKernel(const Query& q, const QueryContext& ctx, bool parallel,
               QueryResult* r) {
  switch (q.kind) {
    case QueryKind::kBfs: {
      const int64_t src = ctx.view->node_index().IndexOf(q.source);
      if (src < 0) {
        r->status = Status::NotFound("BFS source not in snapshot");
        return;
      }
      std::vector<int64_t> dist;
      r->rows = bfs::SequentialDistances(*ctx.view, src, BfsDir::kOut, &dist);
      double sum = 0.0;
      for (const int64_t d : dist) {
        if (d >= 0) sum += static_cast<double>(d);
      }
      r->checksum = sum;
      return;
    }
    case QueryKind::kPageRank: {
      PageRankConfig cfg;
      cfg.max_iters = q.iters;
      cfg.tol = 0;  // Fixed round count, like the paper's timed runs.
      Result<std::vector<double>> scores =
          PageRankScoresOnView(*ctx.view, cfg, parallel);
      if (!scores.ok()) {
        r->status = scores.status();
        return;
      }
      r->rows = static_cast<int64_t>(scores->size());
      double sum = 0.0;
      for (size_t i = 0; i < scores->size(); ++i) {
        sum += (*scores)[i] * static_cast<double>(i + 1);
      }
      r->checksum = sum;
      return;
    }
    case QueryKind::kTableTopK: {
      if (ctx.table == nullptr) {
        r->status = Status::InvalidArgument("session has no table");
        return;
      }
      Result<TablePtr> top = ctx.table->TopK(q.column, q.k);
      if (!top.ok()) {
        r->status = top.status();
        return;
      }
      const Table& t = **top;
      r->rows = t.NumRows();
      const Result<int> col = t.FindColumn(q.column);
      if (col.ok()) {
        const Column& c = t.column(*col);
        double sum = 0.0;
        for (int64_t i = 0; i < t.NumRows(); ++i) {
          sum += c.type() == ColumnType::kFloat
                     ? c.GetFloat(i)
                     : static_cast<double>(c.GetInt(i));
        }
        r->checksum = sum;
      }
      return;
    }
    case QueryKind::kScript: {
      // Scripted query through the declarative front-end. The session
      // table (if any) is visible to the script as `t`; the executor
      // polls the installed cancel token between plan nodes, so the
      // engine's deadline machinery applies unchanged.
      query::RunOptions opts;
      opts.pool = ctx.table != nullptr ? ctx.table->pool() : nullptr;
      opts.bindings["t"] = ctx.table;
      Result<query::RunResult> res = query::RunScript(q.script, opts);
      if (!res.ok()) {
        r->status = res.status();
        return;
      }
      r->rows = res->rows;
      r->checksum = res->checksum;
      return;
    }
    case QueryKind::kSleep: {
      // Deterministic time-filler: sleep in 1ms slices so cancellation
      // lands within about a millisecond of the deadline.
      const int64_t end_ns = cancel::NowNanos() + q.sleep_ms * 1'000'000;
      int64_t slices = 0;
      while (cancel::NowNanos() < end_ns) {
        if (cancel::Checkpoint()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++slices;
      }
      r->rows = slices;
      r->checksum = static_cast<double>(slices);
      return;
    }
  }
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kBfs: return "bfs";
    case QueryKind::kPageRank: return "pagerank";
    case QueryKind::kTableTopK: return "table_topk";
    case QueryKind::kSleep: return "sleep";
    case QueryKind::kScript: return "script";
  }
  return "unknown";
}

Engine::Engine(EngineOptions opts)
    : opts_(opts), pool_(opts.workers, opts.queue_capacity) {}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() { pool_.Shutdown(); }

std::future<QueryResult> Engine::Submit(const Session& session, Query q) {
  RINGO_COUNTER_ADD("serve/submitted", 1);
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> fut = promise->get_future();

  // A negative deadline is a caller bug, not "use the default": reject it
  // up front instead of silently substituting a policy the caller never
  // asked for.
  if (q.deadline_ms < 0) {
    RINGO_COUNTER_ADD("serve/rejected", 1);
    QueryResult bad;
    bad.kind = q.kind;
    bad.status = Status::InvalidArgument(
        "deadline_ms must be >= 0 (0 = engine default), got " +
        std::to_string(q.deadline_ms));
    promise->set_value(std::move(bad));
    return fut;
  }

  const int64_t submit_ns = cancel::NowNanos();
  const int64_t rel_ms =
      q.deadline_ms > 0 ? q.deadline_ms : opts_.default_deadline_ms;
  // Saturating ms → absolute-ns conversion: a huge relative deadline means
  // "effectively none", and the naive multiply would overflow int64 into
  // an already-passed deadline.
  int64_t deadline_ns = INT64_MAX;
  if (rel_ms > 0 && rel_ms <= (INT64_MAX - submit_ns) / 1'000'000) {
    deadline_ns = submit_ns + rel_ms * 1'000'000;
  }

  const Session* s = &session;
  const bool admitted =
      pool_.TrySubmit([this, s, q = std::move(q), promise, submit_ns,
                       deadline_ns]() mutable {
        promise->set_value(Execute(*s, q, submit_ns, deadline_ns));
      });
  if (!admitted) {
    RINGO_COUNTER_ADD("serve/shed", 1);
    QueryResult shed;
    shed.kind = q.kind;
    shed.status = Status::Overloaded("admission queue full");
    promise->set_value(std::move(shed));
    return fut;
  }
  RINGO_COUNTER_ADD("serve/admitted", 1);
  metrics::GaugeSet("serve/queue_depth", pool_.QueueDepth());
  return fut;
}

QueryResult Engine::Execute(const Session& session, const Query& q,
                            int64_t submit_ns, int64_t deadline_ns) {
  trace::Span span("Serve/Query");
  span.AddAttr("kind", static_cast<int64_t>(q.kind));

  QueryResult r;
  r.kind = q.kind;
  const int64_t start_ns = cancel::NowNanos();
  r.queue_ms = static_cast<double>(start_ns - submit_ns) / 1e6;
  metrics::GaugeSet("serve/queue_depth", pool_.QueueDepth());

  if (start_ns >= deadline_ns) {
    // Expired while queued: answer without touching the graph.
    RINGO_COUNTER_ADD("serve/deadline_miss", 1);
    r.status = Status::DeadlineExceeded("deadline passed while queued");
    r.latency_ms = static_cast<double>(cancel::NowNanos() - submit_ns) / 1e6;
    return r;
  }

  // One reusable token per worker thread; kernels poll it through the
  // thread-local installed by ScopedToken.
  static thread_local cancel::CancelToken token;
  token.Reset();
  token.SetDeadline(deadline_ns);
  cancel::ScopedToken scoped(&token);

  const QueryContext ctx = session.Pin();
  r.snapshot_stamp = ctx.snapshot_stamp;
  span.AddAttr("stamp", static_cast<int64_t>(ctx.snapshot_stamp));

  RunKernel(q, ctx, opts_.parallel_kernels, &r);

  if (r.status.ok() && token.ShouldStop()) {
    // The kernel was cut short (or the deadline passed as it finished):
    // discard the partial result rather than return an approximation.
    RINGO_COUNTER_ADD("serve/deadline_miss", 1);
    r.status = Status::DeadlineExceeded("deadline passed mid-query");
    r.rows = 0;
    r.checksum = 0.0;
  } else if (r.status.IsDeadlineExceeded()) {
    // Kernels that surface the cancellation as a Status themselves (the
    // script executor does, between plan nodes) are deadline misses too,
    // not generic failures.
    RINGO_COUNTER_ADD("serve/deadline_miss", 1);
    r.rows = 0;
    r.checksum = 0.0;
  } else if (r.status.ok()) {
    RINGO_COUNTER_ADD("serve/completed", 1);
  } else {
    RINGO_COUNTER_ADD("serve/failed", 1);
  }

  const int64_t end_ns = cancel::NowNanos();
  r.run_ms = static_cast<double>(end_ns - start_ns) / 1e6;
  r.latency_ms = static_cast<double>(end_ns - submit_ns) / 1e6;
  span.AddAttr("queue_ms", r.queue_ms);
  span.AddAttr("run_ms", r.run_ms);
  return r;
}

}  // namespace serve
}  // namespace ringo
