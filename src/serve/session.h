// Sessions pin one immutable snapshot per query (DESIGN.md §12).
//
// A Session is the serving-side handle onto a live graph (and optionally
// a companion table). It owns no data and takes no locks of its own: a
// query calls Pin(), which grabs the current cached AlgoView through the
// single-flight snapshot cache — concurrent pins either share the cached
// view (a pointer copy) or elect exactly one builder. The returned
// QueryContext keeps the view alive for the query's lifetime, so writers
// that publish newer snapshots never invalidate data a running query is
// reading; the old view simply dies with its last QueryContext.
//
// Queries must read ONLY through the QueryContext (view spans, pinned
// table) — never back through the live graph — so every answer is
// consistent as of one stamp, which the context records.
#ifndef RINGO_SERVE_SESSION_H_
#define RINGO_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "table/table.h"

namespace ringo {

class AlgoView;
class DirectedGraph;

namespace serve {

// One query's pinned world: a consistent snapshot plus the stamp it was
// built from. Copyable (shared_ptr semantics); destroying the last copy
// releases the snapshot.
struct QueryContext {
  std::shared_ptr<const AlgoView> view;
  TablePtr table;              // May be null for graph-only sessions.
  uint64_t snapshot_stamp = 0; // Graph mutation stamp the view reflects.
};

class Session {
 public:
  // `graph` must outlive the session; `table` (optional) is shared.
  Session(std::string id, const DirectedGraph* graph, TablePtr table = {});

  // Builds a session whose companion table comes from a file: ".rtb"
  // paths map the binary format (encoded columns stay encoded, borrowing
  // the mapping zero-copy — the compact at-rest layout serves directly),
  // anything else parses as TSV against `schema`. The schema also
  // cross-checks an .rtb file's stored schema when non-empty.
  static Result<Session> WithTableFile(std::string id,
                                       const DirectedGraph* graph,
                                       const Schema& schema,
                                       const std::string& path,
                                       std::shared_ptr<StringPool> pool = nullptr,
                                       bool has_header = false);

  // Pins the freshest cached snapshot for one query. Thread-safe; any
  // number of concurrent Pin() calls race only inside the single-flight
  // snapshot cache.
  QueryContext Pin() const;

  const std::string& id() const { return id_; }
  const DirectedGraph& graph() const { return *graph_; }
  const TablePtr& table() const { return table_; }

 private:
  std::string id_;
  const DirectedGraph* graph_;
  TablePtr table_;
};

}  // namespace serve
}  // namespace ringo

#endif  // RINGO_SERVE_SESSION_H_
