// Query and result types for the concurrent serving engine (DESIGN.md §12).
//
// A Query names one read-only unit of work against a Session's pinned
// snapshot: a BFS from a source node, a PageRank sweep, a table top-k, or
// the synthetic kSleep query (a deterministic time-filler the overload and
// deadline tests use so they never depend on kernel timing). Queries carry
// an optional per-query deadline; the engine converts it to an absolute
// cancel::CancelToken deadline at submission.
#ifndef RINGO_SERVE_QUERY_H_
#define RINGO_SERVE_QUERY_H_

#include <cstdint>
#include <string>

#include "graph/graph_defs.h"
#include "util/status.h"

namespace ringo {
namespace serve {

enum class QueryKind {
  kBfs,       // Forward BFS from `source`; rows = reached nodes.
  kPageRank,  // Power iteration (`iters` rounds); rows = node count.
  kTableTopK, // TopK(`column`, `k`) on the session table; rows = k.
  kSleep,     // Sleeps `sleep_ms` in 1ms slices, honoring cancellation.
  kScript,    // Runs `script` through the query front-end (src/query/)
              // with the session table bound as `t`; deadlines land at
              // plan-node boundaries.
};

const char* QueryKindName(QueryKind kind);

struct Query {
  QueryKind kind = QueryKind::kBfs;

  // kBfs: external node id to start from.
  NodeId source = 0;
  // kPageRank: power-iteration rounds (tol=0, so exactly this many).
  int iters = 10;
  // kTableTopK: column name and k.
  std::string column = "src";
  int64_t k = 10;
  // kSleep: wall-time to burn, sliced so cancellation lands within ~1ms.
  int64_t sleep_ms = 10;
  // kScript: query-language source (see query/ast.h for the grammar).
  std::string script;

  // Relative deadline from submission; 0 uses the engine default, and a
  // negative value is rejected at submission with kInvalidArgument (it is
  // a caller bug, not a request for the default).
  int64_t deadline_ms = 0;
};

struct QueryResult {
  Status status = Status::OK();
  QueryKind kind = QueryKind::kBfs;

  // Stamp of the snapshot the query ran against (0 when it never pinned
  // one, e.g. shed at admission or expired while queued).
  uint64_t snapshot_stamp = 0;

  // Result cardinality (reached nodes / score count / top-k rows).
  int64_t rows = 0;
  // Deterministic content fingerprint, for cross-run comparisons.
  double checksum = 0.0;

  double queue_ms = 0.0;    // Submission -> worker pickup.
  double run_ms = 0.0;      // Kernel time on the worker.
  double latency_ms = 0.0;  // Submission -> completion (queue + run).
};

}  // namespace serve
}  // namespace ringo

#endif  // RINGO_SERVE_QUERY_H_
