#include "serve/worker_pool.h"

#include <utility>

#include "util/logging.h"

namespace ringo {
namespace serve {

WorkerPool::WorkerPool(int num_workers, int64_t queue_capacity)
    : capacity_(queue_capacity) {
  RINGO_CHECK(num_workers >= 1);
  RINGO_CHECK(queue_capacity >= 1);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

bool WorkerPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ || static_cast<int64_t>(queue_.size()) >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

int64_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int64_t>(queue_.size());
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace serve
}  // namespace ringo
