#include "serve/session.h"

#include "algo/algo_view.h"
#include "graph/directed_graph.h"
#include "table/table_io.h"
#include "util/logging.h"

namespace ringo {
namespace serve {

Session::Session(std::string id, const DirectedGraph* graph, TablePtr table)
    : id_(std::move(id)), graph_(graph), table_(std::move(table)) {
  RINGO_CHECK(graph_ != nullptr);  // A session needs a graph.
}

Result<Session> Session::WithTableFile(std::string id,
                                       const DirectedGraph* graph,
                                       const Schema& schema,
                                       const std::string& path,
                                       std::shared_ptr<StringPool> pool,
                                       bool has_header) {
  RINGO_ASSIGN_OR_RETURN(
      TablePtr t, LoadTableAuto(schema, path, std::move(pool), has_header));
  return Session(std::move(id), graph, std::move(t));
}

QueryContext Session::Pin() const {
  QueryContext ctx;
  ctx.view = AlgoView::Of(*graph_);
  ctx.snapshot_stamp = ctx.view->snapshot_stamp();
  ctx.table = table_;
  return ctx;
}

}  // namespace serve
}  // namespace ringo
