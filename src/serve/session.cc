#include "serve/session.h"

#include "algo/algo_view.h"
#include "graph/directed_graph.h"
#include "util/logging.h"

namespace ringo {
namespace serve {

Session::Session(std::string id, const DirectedGraph* graph, TablePtr table)
    : id_(std::move(id)), graph_(graph), table_(std::move(table)) {
  RINGO_CHECK(graph_ != nullptr);  // A session needs a graph.
}

QueryContext Session::Pin() const {
  QueryContext ctx;
  ctx.view = AlgoView::Of(*graph_);
  ctx.snapshot_stamp = ctx.view->snapshot_stamp();
  ctx.table = table_;
  return ctx;
}

}  // namespace serve
}  // namespace ringo
