// Query-mix generation and load harnesses for the serving engine
// (DESIGN.md §12). Used by bench/bench_serving.cc, the serving tests, and
// anyone wanting a quick interactive-load experiment.
//
// The generator draws a seeded stream of BFS / PageRank / table-top-k
// queries (weights configurable), with BFS sources spread over the node-id
// range. Two harnesses drive an Engine with it:
//
//  - RunClosedLoop: `clients` threads, each submitting and then waiting
//    for its result before submitting the next — classic closed-loop load
//    where offered load adapts to service capacity (no shedding expected
//    when clients <= workers + queue capacity).
//  - RunOpenLoop: one thread submitting at a fixed rate regardless of
//    completions — open-loop load that overruns capacity and exercises
//    shedding and queue growth.
//
// Both return a LoadStats with latency percentiles over completed
// queries and counts by outcome.
#ifndef RINGO_SERVE_QUERY_MIX_H_
#define RINGO_SERVE_QUERY_MIX_H_

#include <cstdint>
#include <vector>

#include "serve/engine.h"
#include "serve/query.h"
#include "util/rng.h"

namespace ringo {
namespace serve {

struct MixConfig {
  // Relative weights; they need not sum to 1.
  double bfs_weight = 0.5;
  double pagerank_weight = 0.1;
  double table_weight = 0.4;

  // BFS sources: drawn from `bfs_sources` when non-empty (use real node
  // ids for graphs with sparse id spaces), else uniform in
  // [0, max_node_id].
  std::vector<NodeId> bfs_sources;
  NodeId max_node_id = 0;
  int pagerank_iters = 5;
  int64_t topk_k = 100;
  int64_t deadline_ms = 0;  // Per-query deadline; <= 0 = engine default.
};

class QueryMixGenerator {
 public:
  QueryMixGenerator(uint64_t seed, MixConfig config);
  Query Next();

 private:
  Rng rng_;
  MixConfig config_;
};

struct LoadStats {
  int64_t issued = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t deadline_miss = 0;
  int64_t failed = 0;          // Non-deadline, non-shed errors.
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;  // Completed-ok queries only.

  // Latency percentile over completed queries (p in [0, 100]); 0 when
  // nothing completed.
  double PercentileMs(double p) const;
  double Qps() const { return elapsed_s > 0 ? ok / elapsed_s : 0.0; }
};

// `clients` threads each issue `queries_per_client` queries back to back.
// Each client derives its own generator from `seed` so runs are
// reproducible regardless of scheduling.
LoadStats RunClosedLoop(Engine& engine, const Session& session,
                        const MixConfig& config, uint64_t seed, int clients,
                        int64_t queries_per_client);

// Issues `total` queries at `rate_qps` from one thread (sleeping between
// submissions), then harvests all futures.
LoadStats RunOpenLoop(Engine& engine, const Session& session,
                      const MixConfig& config, uint64_t seed, double rate_qps,
                      int64_t total);

}  // namespace serve
}  // namespace ringo

#endif  // RINGO_SERVE_QUERY_MIX_H_
