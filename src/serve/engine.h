// The concurrent query-serving engine (DESIGN.md §12).
//
// Submit() hands a Query to a fixed worker pool behind a bounded admission
// queue and returns a std::future<QueryResult>:
//
//  - Overload: when the queue is full the query is shed immediately — the
//    future is already satisfied with a kOverloaded Status; nothing queues
//    unboundedly and the caller finds out in microseconds.
//  - Deadlines: each query gets an absolute deadline (its own, or the
//    engine default; deadline_ms = 0 means "engine default", negative is
//    rejected as kInvalidArgument before queuing, and huge values saturate
//    to "no deadline" instead of overflowing). A query that expires while
//    still queued is answered kDeadlineExceeded without running; one that
//    expires mid-kernel is cut short via the thread's cancel::CancelToken
//    (kernels poll cancel::Checkpoint() once per round) and its partial
//    result is discarded — cancellation bounds latency, it never yields
//    approximate answers.
//  - Consistency: the worker pins one snapshot through Session::Pin() and
//    the query reads only that snapshot, so answers are consistent as of
//    the stamp recorded in QueryResult even while writers stream batches.
//
// Metrics: counters serve/{submitted,admitted,rejected,shed,completed,
// failed,deadline_miss} and gauge serve/queue_depth; every query runs
// under a "Serve/Query" trace span.
#ifndef RINGO_SERVE_ENGINE_H_
#define RINGO_SERVE_ENGINE_H_

#include <cstdint>
#include <future>

#include "serve/query.h"
#include "serve/session.h"
#include "serve/worker_pool.h"

namespace ringo {
namespace serve {

struct EngineOptions {
  int workers = 4;
  int64_t queue_capacity = 64;
  // Default relative deadline for queries that don't set one; <= 0 means
  // no deadline.
  int64_t default_deadline_ms = 0;
  // Run kernels with intra-query parallelism. Off by default: the engine
  // already parallelizes across queries, and nesting OpenMP teams under
  // several worker threads oversubscribes the machine.
  bool parallel_kernels = false;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Submits `q` against `session`. The session must stay alive until the
  // returned future is ready. Never blocks: on overload the future is
  // already satisfied with Status::Overloaded, and a malformed query
  // (negative deadline_ms) with Status::InvalidArgument.
  std::future<QueryResult> Submit(const Session& session, Query q);

  // Stops admission, drains admitted queries, joins workers. Idempotent;
  // the destructor calls it. Futures from admitted queries all resolve.
  void Shutdown();

  int64_t QueueDepth() const { return pool_.QueueDepth(); }
  const EngineOptions& options() const { return opts_; }

 private:
  QueryResult Execute(const Session& session, const Query& q,
                      int64_t submit_ns, int64_t deadline_ns);

  EngineOptions opts_;
  WorkerPool pool_;
};

}  // namespace serve
}  // namespace ringo

#endif  // RINGO_SERVE_ENGINE_H_
