// Synthetic StackOverflow dataset generator — the offline stand-in for the
// real data dump the paper's §4.1 demo loads (see DESIGN.md §3). Produces a
// posts table with the same relational shape the demo manipulates:
//
//   PostId:int  Type:string("question"|"answer")  UserId:int  Tag:string
//   AcceptedAnswerId:int  ParentId:int  Time:int
//
// Questions have AcceptedAnswerId = the PostId of their accepted answer
// (or -1); answers have ParentId = their question's PostId (questions: -1).
// User activity is power-law distributed so "expert" users exist, and
// per-tag expertise is skewed so a tag's top answerers are discoverable.
#ifndef RINGO_GEN_STACKOVERFLOW_GEN_H_
#define RINGO_GEN_STACKOVERFLOW_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "table/table.h"

namespace ringo {
namespace gen {

struct StackOverflowConfig {
  int64_t num_users = 2000;
  int64_t num_questions = 10000;
  double mean_answers_per_question = 1.8;
  // Fraction of questions whose asker accepts one answer.
  double accept_fraction = 0.7;
  std::vector<std::string> tags = {"Java",   "Python", "C++",  "SQL",
                                   "Rust",   "Go",     "Ruby", "Haskell"};
  // Zipf skew of user activity (higher = fewer users dominate).
  double user_skew = 1.1;
  uint64_t seed = 7;
};

// Returns the posts table (schema above), built in the given pool (fresh
// pool if null).
TablePtr GenerateStackOverflowPosts(
    const StackOverflowConfig& config,
    std::shared_ptr<StringPool> pool = nullptr);

}  // namespace gen
}  // namespace ringo

#endif  // RINGO_GEN_STACKOVERFLOW_GEN_H_
