#include "gen/stackoverflow_gen.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace ringo {
namespace gen {

namespace {

// Discrete Zipf-like sampler over [0, n) using inverse-CDF on precomputed
// cumulative weights. Deterministic per Rng stream.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double skew) : cdf_(n) {
    double acc = 0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = acc;
    }
    for (int64_t i = 0; i < n; ++i) cdf_[i] /= acc;
  }

  int64_t Sample(Rng& rng) const {
    const double r = rng.UniformReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    return it == cdf_.end() ? static_cast<int64_t>(cdf_.size()) - 1
                            : it - cdf_.begin();
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

TablePtr GenerateStackOverflowPosts(const StackOverflowConfig& config,
                                    std::shared_ptr<StringPool> pool) {
  RINGO_CHECK_GE(config.num_users, 1);
  RINGO_CHECK_GE(config.num_questions, 1);
  RINGO_CHECK(!config.tags.empty());

  Schema schema{{"PostId", ColumnType::kInt},
                {"Type", ColumnType::kString},
                {"UserId", ColumnType::kInt},
                {"Tag", ColumnType::kString},
                {"AcceptedAnswerId", ColumnType::kInt},
                {"ParentId", ColumnType::kInt},
                {"Time", ColumnType::kInt}};
  TablePtr posts = Table::Create(std::move(schema), std::move(pool));

  Rng rng(config.seed);
  const ZipfSampler asker(config.num_users, config.user_skew * 0.7);
  const ZipfSampler tag_sampler(static_cast<int64_t>(config.tags.size()), 1.0);
  // Per-tag answerer pools: each tag's experts are a skewed slice of the
  // user base, offset per tag so different tags have different experts.
  const ZipfSampler answerer(config.num_users, config.user_skew);

  const StringPool::Id type_q = posts->pool()->GetOrAdd("question");
  const StringPool::Id type_a = posts->pool()->GetOrAdd("answer");
  std::vector<StringPool::Id> tag_ids;
  for (const std::string& t : config.tags) {
    tag_ids.push_back(posts->pool()->GetOrAdd(t));
  }

  Column& c_post = posts->mutable_column(0);
  Column& c_type = posts->mutable_column(1);
  Column& c_user = posts->mutable_column(2);
  Column& c_tag = posts->mutable_column(3);
  Column& c_accept = posts->mutable_column(4);
  Column& c_parent = posts->mutable_column(5);
  Column& c_time = posts->mutable_column(6);

  int64_t next_post_id = 1;
  int64_t clock = 0;
  int64_t rows = 0;
  for (int64_t q = 0; q < config.num_questions; ++q) {
    const int64_t tag_idx = tag_sampler.Sample(rng);
    const int64_t question_id = next_post_id++;
    const int64_t asker_id = asker.Sample(rng);
    const int64_t q_row = rows;

    c_post.AppendInt(question_id);
    c_type.AppendStr(type_q);
    c_user.AppendInt(asker_id);
    c_tag.AppendStr(tag_ids[tag_idx]);
    c_accept.AppendInt(-1);  // Patched below if an answer is accepted.
    c_parent.AppendInt(-1);
    c_time.AppendInt(clock++);
    ++rows;

    // Poisson-ish answer count (geometric around the mean).
    int64_t answers = 0;
    const double p = 1.0 / (1.0 + config.mean_answers_per_question);
    while (!rng.Bernoulli(p)) ++answers;

    std::vector<int64_t> answer_ids;
    for (int64_t a = 0; a < answers; ++a) {
      const int64_t answer_id = next_post_id++;
      // Tag expertise: shift the skewed sampler by a tag-dependent offset
      // so each tag has its own expert cluster.
      int64_t answerer_id =
          (answerer.Sample(rng) + tag_idx * 37) % config.num_users;
      c_post.AppendInt(answer_id);
      c_type.AppendStr(type_a);
      c_user.AppendInt(answerer_id);
      c_tag.AppendStr(tag_ids[tag_idx]);
      c_accept.AppendInt(-1);
      c_parent.AppendInt(question_id);
      c_time.AppendInt(clock++);
      ++rows;
      answer_ids.push_back(answer_id);
    }
    if (!answer_ids.empty() && rng.Bernoulli(config.accept_fraction)) {
      const int64_t chosen = answer_ids[rng.UniformInt(
          0, static_cast<int64_t>(answer_ids.size()) - 1)];
      c_accept.SetInt(q_row, chosen);
    }
  }
  RINGO_CHECK_OK(posts->SealAppendedRows(rows));
  return posts;
}

}  // namespace gen
}  // namespace ringo
