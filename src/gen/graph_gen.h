// Graph generators. These stand in for the paper's benchmark datasets
// (LiveJournal, Twitter2010 — see DESIGN.md §3): R-MAT reproduces the
// skewed degree distributions of those social graphs, and the classic
// models (Erdős–Rényi, preferential attachment, small world) support the
// test suite and examples. All generators are deterministic per seed.
#ifndef RINGO_GEN_GRAPH_GEN_H_
#define RINGO_GEN_GRAPH_GEN_H_

#include <cstdint>
#include <vector>

#include "graph/directed_graph.h"
#include "graph/undirected_graph.h"
#include "util/result.h"

namespace ringo {
namespace gen {

// R-MAT parameters (Chakrabarti et al.); defaults are the Graph500 values
// that produce social-network-like skew.
struct RMatParams {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c.
  bool allow_self_loops = false;
};

// `m` directed edge samples over 2^scale nodes (duplicates possible — the
// raw list models a real edge log; build a graph to dedupe).
Result<std::vector<Edge>> RMatEdges(int scale, int64_t m, uint64_t seed,
                                    const RMatParams& params = {});

// Uniform directed edge list over [0, n) with m samples (duplicates and
// self-loops possible unless filtered by graph construction).
std::vector<Edge> UniformEdges(int64_t n, int64_t m, uint64_t seed);

// Builds graphs from edge lists (duplicates collapse; all endpoint nodes
// added).
DirectedGraph BuildDirected(const std::vector<Edge>& edges);
UndirectedGraph BuildUndirected(const std::vector<Edge>& edges);

// Erdős–Rényi G(n, m): exactly m distinct edges (no self-loops).
Result<DirectedGraph> ErdosRenyiDirected(int64_t n, int64_t m, uint64_t seed);
Result<UndirectedGraph> ErdosRenyiUndirected(int64_t n, int64_t m,
                                             uint64_t seed);

// Barabási–Albert preferential attachment: each new node attaches to
// `out_deg` existing nodes, preferring high degree.
Result<UndirectedGraph> PreferentialAttachment(int64_t n, int64_t out_deg,
                                               uint64_t seed);

// Watts–Strogatz small world: ring of n nodes, each linked to k nearest
// neighbors on each side, each edge rewired with probability beta.
Result<UndirectedGraph> SmallWorld(int64_t n, int64_t k, double beta,
                                   uint64_t seed);

// Deterministic structured graphs.
UndirectedGraph Complete(int64_t n);
DirectedGraph CompleteDirected(int64_t n);  // All ordered pairs, no loops.
UndirectedGraph Star(int64_t n);            // Node 0 is the hub.
UndirectedGraph Ring(int64_t n);
UndirectedGraph Grid(int64_t rows, int64_t cols);
UndirectedGraph FullTree(int64_t fanout, int64_t levels);  // Root id 0.

// Random bipartite graph: parts [0, n1) and [n1, n1+n2), each cross pair
// present with probability p.
Result<UndirectedGraph> Bipartite(int64_t n1, int64_t n2, double p,
                                  uint64_t seed);

// Configuration model: a random simple graph whose degree sequence
// approximates `degrees` (node i targets degrees[i]). Stub matching with
// rejection of self-loops and duplicate edges, so heavy-tailed sequences
// may fall slightly short of their targets; the degree sum must be even.
Result<UndirectedGraph> ConfigurationModel(const std::vector<int64_t>& degrees,
                                           uint64_t seed);

// The paper-benchmark stand-ins (DESIGN.md §3). `scale_factor` rescales
// both nodes and edges; 1.0 gives the default simulation size of
// 2^17 nodes / 1M edges (LiveJournalSim) and 2^18 nodes / 4M edges
// (TwitterSim).
std::vector<Edge> LiveJournalSimEdges(double scale_factor = 1.0,
                                      uint64_t seed = 42);
std::vector<Edge> TwitterSimEdges(double scale_factor = 1.0,
                                  uint64_t seed = 43);

}  // namespace gen
}  // namespace ringo

#endif  // RINGO_GEN_GRAPH_GEN_H_
