#include "gen/graph_gen.h"

#include <algorithm>
#include <cmath>

#include "storage/flat_hash_map.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace ringo {
namespace gen {

Result<std::vector<Edge>> RMatEdges(int scale, int64_t m, uint64_t seed,
                                    const RMatParams& params) {
  if (scale < 1 || scale > 40) {
    return Status::InvalidArgument("RMat scale must be in [1, 40]");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    return Status::InvalidArgument("RMat probabilities must be >= 0, sum <= 1");
  }
  std::vector<Edge> edges(m);
  // Fixed-size blocks with independent RNG streams: the result is
  // deterministic for a given seed regardless of the thread count.
  constexpr int64_t kBlock = 1 << 16;
  const int64_t blocks = (m + kBlock - 1) / kBlock;
  ParallelForDynamic(0, blocks, [&](int64_t b) {
    Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(b + 1)));
    const int64_t end = std::min(m, (b + 1) * kBlock);
    for (int64_t i = b * kBlock; i < end; ++i) {
      while (true) {
        NodeId src = 0, dst = 0;
        for (int bit = 0; bit < scale; ++bit) {
          const double r = rng.UniformReal();
          src <<= 1;
          dst <<= 1;
          if (r < params.a) {
            // Top-left quadrant: no bits set.
          } else if (r < params.a + params.b) {
            dst |= 1;
          } else if (r < params.a + params.b + params.c) {
            src |= 1;
          } else {
            src |= 1;
            dst |= 1;
          }
        }
        if (src == dst && !params.allow_self_loops) continue;
        edges[i] = {src, dst};
        break;
      }
    }
  }, /*chunk=*/1);
  return edges;
}

std::vector<Edge> UniformEdges(int64_t n, int64_t m, uint64_t seed) {
  std::vector<Edge> edges(m);
  Rng rng(seed);
  for (int64_t i = 0; i < m; ++i) {
    edges[i] = {rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1)};
  }
  return edges;
}

DirectedGraph BuildDirected(const std::vector<Edge>& edges) {
  DirectedGraph g;
  for (const Edge& e : edges) g.AddEdge(e.first, e.second);
  return g;
}

UndirectedGraph BuildUndirected(const std::vector<Edge>& edges) {
  UndirectedGraph g;
  for (const Edge& e : edges) g.AddEdge(e.first, e.second);
  return g;
}

namespace {

// Samples exactly m distinct non-loop pairs via rejection; requires m to be
// comfortably below the number of possible pairs.
Status CheckEdgeBudget(int64_t n, int64_t m, bool directed) {
  const double cap = directed ? static_cast<double>(n) * (n - 1)
                              : static_cast<double>(n) * (n - 1) / 2.0;
  if (n < 2 || m < 0 || static_cast<double>(m) > cap) {
    return Status::InvalidArgument("infeasible ErdosRenyi(n=" +
                                   std::to_string(n) +
                                   ", m=" + std::to_string(m) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<DirectedGraph> ErdosRenyiDirected(int64_t n, int64_t m, uint64_t seed) {
  RINGO_RETURN_NOT_OK(CheckEdgeBudget(n, m, /*directed=*/true));
  DirectedGraph g;
  g.ReserveNodes(n);
  for (int64_t i = 0; i < n; ++i) g.AddNode(i);
  Rng rng(seed);
  int64_t added = 0;
  while (added < m) {
    const NodeId u = rng.UniformInt(0, n - 1);
    const NodeId v = rng.UniformInt(0, n - 1);
    if (u == v) continue;
    if (g.AddEdge(u, v)) ++added;
  }
  return g;
}

Result<UndirectedGraph> ErdosRenyiUndirected(int64_t n, int64_t m,
                                             uint64_t seed) {
  RINGO_RETURN_NOT_OK(CheckEdgeBudget(n, m, /*directed=*/false));
  UndirectedGraph g;
  g.ReserveNodes(n);
  for (int64_t i = 0; i < n; ++i) g.AddNode(i);
  Rng rng(seed);
  int64_t added = 0;
  while (added < m) {
    const NodeId u = rng.UniformInt(0, n - 1);
    const NodeId v = rng.UniformInt(0, n - 1);
    if (u == v) continue;
    if (g.AddEdge(u, v)) ++added;
  }
  return g;
}

Result<UndirectedGraph> PreferentialAttachment(int64_t n, int64_t out_deg,
                                               uint64_t seed) {
  if (out_deg < 1 || n < out_deg + 1) {
    return Status::InvalidArgument(
        "PreferentialAttachment needs out_deg >= 1 and n > out_deg");
  }
  UndirectedGraph g;
  g.ReserveNodes(n);
  Rng rng(seed);
  // Endpoint pool: every edge endpoint appears once, giving the
  // degree-proportional sampling distribution.
  std::vector<NodeId> pool;
  pool.reserve(2 * n * out_deg);
  // Seed clique over the first out_deg + 1 nodes.
  for (NodeId u = 0; u <= out_deg; ++u) {
    for (NodeId v = u + 1; v <= out_deg; ++v) {
      g.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (NodeId u = out_deg + 1; u < n; ++u) {
    FlatHashSet<NodeId> targets;
    while (targets.size() < out_deg) {
      const NodeId v =
          pool[rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1)];
      targets.Insert(v);
    }
    targets.ForEach([&](NodeId v) {
      g.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    });
  }
  return g;
}

Result<UndirectedGraph> SmallWorld(int64_t n, int64_t k, double beta,
                                   uint64_t seed) {
  if (n < 3 || k < 1 || 2 * k >= n || beta < 0 || beta > 1) {
    return Status::InvalidArgument("infeasible SmallWorld parameters");
  }
  UndirectedGraph g;
  g.ReserveNodes(n);
  for (int64_t i = 0; i < n; ++i) g.AddNode(i);
  Rng rng(seed);
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t j = 1; j <= k; ++j) {
      NodeId v = (u + j) % n;
      if (rng.Bernoulli(beta)) {
        // Rewire to a uniform non-self, non-duplicate target.
        for (int attempt = 0; attempt < 64; ++attempt) {
          const NodeId w = rng.UniformInt(0, n - 1);
          if (w != u && !g.HasEdge(u, w)) {
            v = w;
            break;
          }
        }
      }
      g.AddEdge(u, v);
    }
  }
  return g;
}

UndirectedGraph Complete(int64_t n) {
  UndirectedGraph g;
  g.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) g.AddNode(u);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  return g;
}

DirectedGraph CompleteDirected(int64_t n) {
  DirectedGraph g;
  g.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) g.AddNode(u);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  return g;
}

UndirectedGraph Star(int64_t n) {
  UndirectedGraph g;
  g.ReserveNodes(n);
  g.AddNode(0);
  for (NodeId v = 1; v < n; ++v) g.AddEdge(0, v);
  return g;
}

UndirectedGraph Ring(int64_t n) {
  UndirectedGraph g;
  g.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) g.AddNode(u);
  if (n == 2) {
    g.AddEdge(0, 1);
    return g;
  }
  for (NodeId u = 0; u < n && n >= 3; ++u) g.AddEdge(u, (u + 1) % n);
  return g;
}

UndirectedGraph Grid(int64_t rows, int64_t cols) {
  UndirectedGraph g;
  g.ReserveNodes(rows * cols);
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      g.AddNode(id(r, c));
      if (r > 0) g.AddEdge(id(r, c), id(r - 1, c));
      if (c > 0) g.AddEdge(id(r, c), id(r, c - 1));
    }
  }
  return g;
}

UndirectedGraph FullTree(int64_t fanout, int64_t levels) {
  UndirectedGraph g;
  g.AddNode(0);
  // Level l spans ids [(f^l - 1)/(f - 1), (f^(l+1) - 1)/(f - 1)).
  NodeId next = 1;
  std::vector<NodeId> frontier{0};
  for (int64_t l = 1; l < levels; ++l) {
    std::vector<NodeId> fresh;
    for (NodeId p : frontier) {
      for (int64_t c = 0; c < fanout; ++c) {
        g.AddEdge(p, next);
        fresh.push_back(next++);
      }
    }
    frontier = std::move(fresh);
  }
  return g;
}

Result<UndirectedGraph> Bipartite(int64_t n1, int64_t n2, double p,
                                  uint64_t seed) {
  if (n1 < 1 || n2 < 1 || p < 0 || p > 1) {
    return Status::InvalidArgument("infeasible Bipartite parameters");
  }
  UndirectedGraph g;
  g.ReserveNodes(n1 + n2);
  for (NodeId u = 0; u < n1 + n2; ++u) g.AddNode(u);
  Rng rng(seed);
  for (NodeId u = 0; u < n1; ++u) {
    for (NodeId v = n1; v < n1 + n2; ++v) {
      if (rng.Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Result<UndirectedGraph> ConfigurationModel(const std::vector<int64_t>& degrees,
                                           uint64_t seed) {
  int64_t total = 0;
  for (int64_t d : degrees) {
    if (d < 0) {
      return Status::InvalidArgument("degrees must be non-negative");
    }
    total += d;
  }
  if (total % 2 != 0) {
    return Status::InvalidArgument("degree sum must be even");
  }
  // Stub list: node i appears degrees[i] times; a random perfect matching
  // of stubs yields edges.
  std::vector<NodeId> stubs;
  stubs.reserve(total);
  for (size_t i = 0; i < degrees.size(); ++i) {
    for (int64_t d = 0; d < degrees[i]; ++d) {
      stubs.push_back(static_cast<NodeId>(i));
    }
  }
  Rng rng(seed);
  for (int64_t i = static_cast<int64_t>(stubs.size()) - 1; i > 0; --i) {
    std::swap(stubs[i], stubs[rng.UniformInt(0, i)]);
  }
  UndirectedGraph g;
  g.ReserveNodes(static_cast<int64_t>(degrees.size()));
  for (size_t i = 0; i < degrees.size(); ++i) {
    g.AddNode(static_cast<NodeId>(i));
  }
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const NodeId u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;      // Rejected self-loop.
    g.AddEdge(u, v);           // Duplicate edges silently collapse.
  }
  return g;
}

namespace {

// Shrinks the R-MAT scale along with the edge budget so the edge/node
// density (and thus the per-node-overhead share of memory, the adjacency
// lengths, etc.) stays comparable across scale factors.
int AdjustedScale(int base_scale, double scale_factor) {
  int adjust = 0;
  double f = scale_factor;
  while (f < 0.75 && base_scale + adjust > 10) {
    f *= 2;
    --adjust;
  }
  while (f > 1.5 && base_scale + adjust < 26) {
    f /= 2;
    ++adjust;
  }
  return base_scale + adjust;
}

}  // namespace

std::vector<Edge> LiveJournalSimEdges(double scale_factor, uint64_t seed) {
  const int64_t m = static_cast<int64_t>(1000000 * scale_factor);
  return RMatEdges(AdjustedScale(17, scale_factor), std::max<int64_t>(m, 1),
                   seed)
      .ValueOrDie();
}

std::vector<Edge> TwitterSimEdges(double scale_factor, uint64_t seed) {
  const int64_t m = static_cast<int64_t>(4000000 * scale_factor);
  return RMatEdges(AdjustedScale(18, scale_factor), std::max<int64_t>(m, 1),
                   seed)
      .ValueOrDie();
}

}  // namespace gen
}  // namespace ringo
