// OpenMP-backed parallel primitives. The paper parallelizes critical loops
// with "a few OpenMP statements" (§2.5); this header centralizes those
// patterns: parallel-for over index ranges, parallel comparison sort (the
// backbone of the sort-first table→graph conversion, §2.4), parallel prefix
// sums, deterministic reductions, and thread-count plumbing.
//
// Everything here degrades gracefully to sequential execution when OpenMP
// has a single thread available.
//
// ---------------------------------------------------------------------------
// ThreadSanitizer strategy (see README.md "Testing & sanitizers")
//
// GCC's libgomp synchronizes through raw futexes that TSan cannot model, so
// a naive `#pragma omp parallel for` produces false positives even for
// perfectly synchronized code. Instead of blanket suppressions — which
// would also mask *real* races in loop bodies, because suppression patterns
// match whole stacks — every primitive here makes the fork/join ordering
// explicit:
//
//   1. A RegionFence (one atomic, acquire/release) is published by the
//      master before the region and observed by every worker on entry;
//      workers publish on exit and the master observes after the join.
//      This is real C++ synchronization, valid under the memory model
//      independent of libgomp, and it teaches TSan the fork/join edges.
//   2. The one thing the fence cannot cover is the compiler-generated
//      argument block (omp_data / task payload): it is written by the
//      master AT region/task launch — after the fence publish — and read
//      by workers before any user code runs. The OpenMP runtime guarantees
//      that handoff; TSan just cannot see it. Each region therefore copies
//      the captured values to locals inside a narrow
//      AnnotateIgnoreReadsBegin/End window and runs the body off the
//      locals. The copies go through HandoffRead (volatile byte reads):
//      GCC marks the outlined function's argument-block pointer
//      `restrict`, so plain loads get hoisted into the prologue, above
//      the window open — volatile reads cannot be reordered across the
//      annotation calls. Only those few word-sized handoff reads are
//      exempted; all loop-body accesses remain fully checked.
// ---------------------------------------------------------------------------
#ifndef RINGO_UTIL_PARALLEL_H_
#define RINGO_UTIL_PARALLEL_H_

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define RINGO_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RINGO_TSAN 1
#endif
#endif

#ifdef RINGO_TSAN
extern "C" {
// Exported by libtsan (valgrind-compatible annotation API).
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
#define RINGO_TSAN_IGNORE_READS_BEGIN() \
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define RINGO_TSAN_IGNORE_READS_END() AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
#else
#define RINGO_TSAN_IGNORE_READS_BEGIN() ((void)0)
#define RINGO_TSAN_IGNORE_READS_END() ((void)0)
#endif

namespace ringo {

// Number of threads a parallel region will use (honors OMP_NUM_THREADS and
// SetNumThreads).
int NumThreads();

// Caps the number of threads used by subsequent parallel regions.
void SetNumThreads(int n);

namespace internal {

// RegionFence: materializes the happens-before edges of an OpenMP
// fork/join region as C++ acquire/release operations on one atomic.
// Protocol:
//   * the master calls Publish() before the region and Observe() after it;
//   * each worker calls Observe() on entry and Publish() on exit (for
//     tasks: Observe() at task start, Publish() at task end).
// Publish() releases all prior writes of the calling thread; Observe()
// acquires everything published so far. The chain of read-modify-writes
// keeps every Publish() in one release sequence, so a single Observe()
// synchronizes with all of them.
class RegionFence {
 public:
  void Publish() { token_.fetch_add(1, std::memory_order_acq_rel); }
  void Observe() { (void)token_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> token_{0};
};

// Copies `src` through volatile byte reads. Used for the OpenMP argument
// handoff inside a TSan ignore-reads window: a plain copy of a region
// capture compiles to a load through the `restrict`-qualified argument
// block, which GCC hoists into the outlined function's prologue — above
// the window open. Volatile accesses cannot be reordered across the
// (side-effecting) annotation calls, so these reads stay inside the
// window. Compiles to an ordinary word copy when TSan is off.
template <typename T>
inline T HandoffRead(const T& src) {
  static_assert(std::is_trivially_copyable_v<T>,
                "OpenMP handoff values must be trivially copyable");
  union Bits {
    unsigned char raw[sizeof(T)];
    T val;
    Bits() : raw{} {}
  } bits;
  const volatile unsigned char* from =
      reinterpret_cast<const volatile unsigned char*>(&src);
  for (std::size_t i = 0; i < sizeof(T); ++i) bits.raw[i] = from[i];
  return bits.val;
}

}  // namespace internal

// Applies fn(i) for i in [begin, end), statically partitioned across
// threads. fn must be safe to run concurrently for distinct i.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, Fn&& fn) {
  if (NumThreads() <= 1 || end - begin <= 1) {
    // No concurrency possible: skip the fork/join region and its fences.
    // Same iteration order as a one-thread region, so bit-identical output.
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  internal::RegionFence fence;
  internal::RegionFence* const fence_ptr = &fence;
  auto* const fn_ptr = &fn;
  fence.Publish();
#pragma omp parallel default(shared)
  {
    RINGO_TSAN_IGNORE_READS_BEGIN();
    const int64_t b = internal::HandoffRead(begin);
    const int64_t e = internal::HandoffRead(end);
    auto* const f = internal::HandoffRead(fn_ptr);
    internal::RegionFence* const fc = internal::HandoffRead(fence_ptr);
    RINGO_TSAN_IGNORE_READS_END();
    fc->Observe();
#pragma omp for schedule(static) nowait
    for (int64_t i = b; i < e; ++i) {
      (*f)(i);
    }
    fc->Publish();
  }
  fence.Observe();
}

// Dynamic-scheduled variant for skewed per-item costs (e.g. per-node work on
// power-law graphs, where hub nodes dominate).
template <typename Fn>
void ParallelForDynamic(int64_t begin, int64_t end, Fn&& fn,
                        int64_t chunk = 256) {
  if (NumThreads() <= 1 || end - begin <= 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  internal::RegionFence fence;
  internal::RegionFence* const fence_ptr = &fence;
  auto* const fn_ptr = &fn;
  fence.Publish();
#pragma omp parallel default(shared)
  {
    RINGO_TSAN_IGNORE_READS_BEGIN();
    const int64_t b = internal::HandoffRead(begin);
    const int64_t e = internal::HandoffRead(end);
    const int64_t ck = internal::HandoffRead(chunk);
    auto* const f = internal::HandoffRead(fn_ptr);
    internal::RegionFence* const fc = internal::HandoffRead(fence_ptr);
    RINGO_TSAN_IGNORE_READS_END();
    fc->Observe();
#pragma omp for schedule(dynamic, ck) nowait
    for (int64_t i = b; i < e; ++i) {
      (*f)(i);
    }
    fc->Publish();
  }
  fence.Observe();
}

namespace internal {

constexpr int64_t kParallelSortCutoff = 1 << 14;

}  // namespace internal

// Parallel comparison sort: bottom-up merge sort — leaf chunks are
// std::sort-ed in parallel, then pairwise std::merge passes double the
// sorted width until the whole range is one run. Merges stream
// out-of-place, ping-ponging between the input range and one scratch
// buffer (std::inplace_merge's rotate-based fallback is far slower and
// allocates per merge anyway), so the element type must be copyable.
// Each pass is a ParallelFor, so every fork/join edge is fence-covered
// (OpenMP tasks are deliberately avoided: GCC reads scalar task payloads
// in the outlined function's prologue, which defeats the TSan handoff
// windows). Stable ordering is NOT guaranteed; with a total-order
// comparator the output is deterministic for every thread count. Falls
// back to std::sort for small inputs or single-threaded runs.
//
// This is the generic fallback kernel: operators whose keys normalize to
// uint64 words run the distribution sort in util/radix_sort.h instead
// (see table/key_normalize.h for the selection rules).
template <typename Iter, typename Cmp>
void ParallelSort(Iter begin, Iter end, Cmp cmp) {
  using T = typename std::iterator_traits<Iter>::value_type;
  const int64_t n = end - begin;
  if (n <= internal::kParallelSortCutoff || NumThreads() <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  // Leaf chunks sized for ~4 per thread (load balance), but large enough
  // that std::sort dominates the merge overhead.
  const int64_t target_chunks = int64_t{4} * NumThreads();
  const int64_t chunk =
      std::max((n + target_chunks - 1) / target_chunks,
               internal::kParallelSortCutoff / 4);
  const int64_t nchunks = (n + chunk - 1) / chunk;
  ParallelFor(0, nchunks, [&](int64_t c) {
    const int64_t lo = c * chunk;
    const int64_t hi = std::min(n, lo + chunk);
    std::sort(begin + lo, begin + hi, cmp);
  });
  if (nchunks <= 1) return;

  // Copy-construct the scratch from the range: works for any copyable T
  // (no default construction) and the first pass overwrites it anyway.
  std::vector<T> buf(begin, end);
  auto merge_pass = [&](auto src, auto dst, int64_t width) {
    const int64_t pairs = (n + 2 * width - 1) / (2 * width);
    ParallelFor(0, pairs, [&](int64_t p) {
      const int64_t lo = p * 2 * width;
      const int64_t mid = std::min(n, lo + width);
      const int64_t hi = std::min(n, lo + 2 * width);
      // An unpaired tail run (mid == hi) degenerates to a copy.
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, cmp);
    });
  };
  bool in_buf = false;  // Where the full data currently lives.
  for (int64_t width = chunk; width < n; width *= 2) {
    if (in_buf) {
      merge_pass(buf.begin(), begin, width);
    } else {
      merge_pass(begin, buf.begin(), width);
    }
    in_buf = !in_buf;
  }
  if (in_buf) {
    ParallelFor(0, nchunks, [&](int64_t c) {
      const int64_t lo = c * chunk;
      const int64_t hi = std::min(n, lo + chunk);
      std::copy(buf.begin() + lo, buf.begin() + hi, begin + lo);
    });
  }
}

template <typename Iter>
void ParallelSort(Iter begin, Iter end) {
  using T = typename std::iterator_traits<Iter>::value_type;
  ParallelSort(begin, end, std::less<T>());
}

// Deterministic (thread-count-invariant) parallel reduction of fn(i) over
// [begin, end). Values are accumulated sequentially inside fixed-size
// blocks and the block partials are combined in index order, so for
// floating-point accumulators the result is bit-identical no matter how
// many threads execute — unlike `omp reduction`, whose combination order
// depends on the team size and schedule. With `parallel == false` the same
// blocked association is used on the calling thread, so sequential and
// parallel callers agree bit-for-bit.
template <typename Fn,
          typename T = std::decay_t<std::invoke_result_t<Fn&, int64_t>>>
T DeterministicBlockSum(int64_t begin, int64_t end, Fn&& fn,
                        bool parallel = true) {
  constexpr int64_t kBlock = 1 << 12;
  const int64_t n = end - begin;
  if (n <= 0) return T{};
  const int64_t nblocks = (n + kBlock - 1) / kBlock;
  std::vector<T> partial(static_cast<size_t>(nblocks), T{});
  auto block = [&](int64_t b) {
    const int64_t lo = begin + b * kBlock;
    const int64_t hi = std::min(end, lo + kBlock);
    T acc{};
    for (int64_t i = lo; i < hi; ++i) acc += fn(i);
    partial[b] = acc;
  };
  if (parallel && nblocks > 1) {
    // Dynamic schedule: blocks are coarse already, and per-block cost can
    // be skewed (hub nodes); claiming order cannot affect the result.
    ParallelForDynamic(0, nblocks, block, /*chunk=*/1);
  } else {
    for (int64_t b = 0; b < nblocks; ++b) block(b);
  }
  T total{};
  for (const T& p : partial) total += p;
  return total;
}

// Exclusive prefix sum: out[i] = sum of in[0..i); returns the total. `out`
// may alias `in`. Runs in two parallel passes for large inputs.
int64_t ExclusivePrefixSum(const int64_t* in, int64_t* out, int64_t n);

inline int64_t ExclusivePrefixSum(std::vector<int64_t>& v) {
  return ExclusivePrefixSum(v.data(), v.data(), static_cast<int64_t>(v.size()));
}

// Splits [0, n) into NumThreads() near-equal contiguous ranges; returns the
// (thread_count + 1) boundaries. Used by partitioned writers (graph→table
// conversion, §2.4).
std::vector<int64_t> PartitionRange(int64_t n, int parts);

}  // namespace ringo

#endif  // RINGO_UTIL_PARALLEL_H_
