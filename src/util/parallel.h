// OpenMP-backed parallel primitives. The paper parallelizes critical loops
// with "a few OpenMP statements" (§2.5); this header centralizes those
// patterns: parallel-for over index ranges, parallel comparison sort (the
// backbone of the sort-first table→graph conversion, §2.4), parallel prefix
// sums, and thread-count plumbing.
//
// Everything here degrades gracefully to sequential execution when OpenMP
// has a single thread available.
#ifndef RINGO_UTIL_PARALLEL_H_
#define RINGO_UTIL_PARALLEL_H_

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

namespace ringo {

// Number of threads a parallel region will use (honors OMP_NUM_THREADS and
// SetNumThreads).
int NumThreads();

// Caps the number of threads used by subsequent parallel regions.
void SetNumThreads(int n);

// Applies fn(i) for i in [begin, end), statically partitioned across
// threads. fn must be safe to run concurrently for distinct i.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (int64_t i = begin; i < end; ++i) {
    fn(i);
  }
}

// Dynamic-scheduled variant for skewed per-item costs (e.g. per-node work on
// power-law graphs, where hub nodes dominate).
template <typename Fn>
void ParallelForDynamic(int64_t begin, int64_t end, Fn&& fn,
                        int64_t chunk = 256) {
#pragma omp parallel for schedule(dynamic, chunk)
  for (int64_t i = begin; i < end; ++i) {
    fn(i);
  }
}

namespace internal {

constexpr int64_t kParallelSortCutoff = 1 << 14;

template <typename Iter, typename Cmp>
void ParallelSortTask(Iter begin, Iter end, Cmp cmp, int depth) {
  const int64_t n = end - begin;
  if (n <= kParallelSortCutoff || depth <= 0) {
    std::sort(begin, end, cmp);
    return;
  }
  Iter mid = begin + n / 2;
#pragma omp task default(none) firstprivate(begin, mid, cmp, depth)
  ParallelSortTask(begin, mid, cmp, depth - 1);
#pragma omp task default(none) firstprivate(mid, end, cmp, depth)
  ParallelSortTask(mid, end, cmp, depth - 1);
#pragma omp taskwait
  std::inplace_merge(begin, mid, end, cmp);
}

}  // namespace internal

// Parallel comparison sort: task-parallel merge sort with std::sort leaves.
// Stable ordering is NOT guaranteed. Falls back to std::sort for small
// inputs or single-threaded runs.
template <typename Iter, typename Cmp>
void ParallelSort(Iter begin, Iter end, Cmp cmp) {
  const int64_t n = end - begin;
  if (n <= internal::kParallelSortCutoff || NumThreads() <= 1) {
    std::sort(begin, end, cmp);
    return;
  }
  // Depth chosen so leaf count ≈ 4x threads for load balance.
  int depth = 2;
  while ((int64_t{1} << depth) < int64_t{4} * NumThreads()) ++depth;
#pragma omp parallel default(none) shared(begin, end, cmp, depth)
  {
#pragma omp single nowait
    internal::ParallelSortTask(begin, end, cmp, depth);
  }
}

template <typename Iter>
void ParallelSort(Iter begin, Iter end) {
  using T = typename std::iterator_traits<Iter>::value_type;
  ParallelSort(begin, end, std::less<T>());
}

// Exclusive prefix sum: out[i] = sum of in[0..i); returns the total. `out`
// may alias `in`. Runs in two parallel passes for large inputs.
int64_t ExclusivePrefixSum(const int64_t* in, int64_t* out, int64_t n);

inline int64_t ExclusivePrefixSum(std::vector<int64_t>& v) {
  return ExclusivePrefixSum(v.data(), v.data(), static_cast<int64_t>(v.size()));
}

// Splits [0, n) into NumThreads() near-equal contiguous ranges; returns the
// (thread_count + 1) boundaries. Used by partitioned writers (graph→table
// conversion, §2.4).
std::vector<int64_t> PartitionRange(int64_t n, int parts);

}  // namespace ringo

#endif  // RINGO_UTIL_PARALLEL_H_
