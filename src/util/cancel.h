// Cooperative cancellation for long-running kernels (DESIGN.md §12).
//
// The serving engine gives each query a deadline; kernels that iterate for
// many rounds (PageRank power iteration, BFS frontier expansion, HITS)
// call cancel::Checkpoint() at the top of each round and bail out early
// when the active token expired or was cancelled. The partial result they
// return is discarded by the executor — cancellation is purely a latency
// mechanism, never a source of approximate answers.
//
// The token is installed per-thread (a thread_local pointer) by
// ScopedToken, so kernel signatures stay unchanged and code outside the
// serving engine pays one predictable-branch TLS load per checkpoint — no
// token installed means Checkpoint() is always false and behavior is
// bit-identical to the pre-cancellation library.
//
// CancelToken itself is thread-safe: the owner (engine) sets the deadline
// or cancels from any thread; the worker running the kernel polls it.
#ifndef RINGO_UTIL_CANCEL_H_
#define RINGO_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ringo {
namespace cancel {

// Monotonic nanoseconds since an arbitrary epoch; the clock every deadline
// in the serving layer is expressed in.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation; checkpoints observe it on their next poll.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Sets / clears the absolute deadline (NowNanos clock; INT64_MAX = none).
  void SetDeadline(int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  bool Cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  bool Expired() const { return NowNanos() >= deadline_ns(); }

  // True when the kernel should stop: explicit cancel or deadline passed.
  bool ShouldStop() const { return Cancelled() || Expired(); }

  // Rearms the token for reuse by a later query.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(INT64_MAX, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{INT64_MAX};
};

// The token the current thread's kernels poll; nullptr outside a serving
// worker.
CancelToken* CurrentToken();

// Installs `token` as the current thread's token for the scope; restores
// the previous one on exit (nesting is allowed, inner token wins).
class ScopedToken {
 public:
  explicit ScopedToken(CancelToken* token);
  ~ScopedToken();
  ScopedToken(const ScopedToken&) = delete;
  ScopedToken& operator=(const ScopedToken&) = delete;

 private:
  CancelToken* prev_;
};

// The kernel-side poll: true when the active token (if any) wants the
// kernel to stop. Kernels call this once per outer iteration — cheap
// enough to never matter, frequent enough to bound overshoot by one round.
bool Checkpoint();

}  // namespace cancel
}  // namespace ringo

#endif  // RINGO_UTIL_CANCEL_H_
