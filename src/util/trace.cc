#include "util/trace.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/metrics.h"

namespace ringo {
namespace trace {

namespace {

// All span timestamps are relative to this per-process anchor so exported
// traces start near t=0.
int64_t TraceEpoch() {
  static const int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

int64_t NowNanos() {
  // Fetch the epoch BEFORE reading the clock: with the opposite order two
  // threads racing the first span could anchor the epoch to the later
  // thread's clock read and hand the earlier one a negative timestamp.
  const int64_t epoch = TraceEpoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch;
}

// Peak RSS of the process in KB. getrusage is one cheap syscall (no /proc
// parse), fine at operator-span granularity.
int64_t PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<int64_t>(ru.ru_maxrss);
}

// Completed spans of one thread. `mu` is uncontended except during an
// export, so appends stay cheap and TSan-clean.
struct ThreadBuffer {
  std::mutex mu;
  int tid = 0;
  std::vector<SpanEvent> events;
};

struct Collector {
  static Collector& Instance() {
    static Collector* c = new Collector();  // Leaked; threads may outlive exit.
    return *c;
  }

  ThreadBuffer* ThisThread() {
    thread_local ThreadBuffer* buf = nullptr;
    if (buf == nullptr) {
      auto owned = std::make_unique<ThreadBuffer>();
      buf = owned.get();
      std::lock_guard<std::mutex> lock(mu);
      buf->tid = static_cast<int>(buffers.size());
      buffers.push_back(std::move(owned));
    }
    return buf;
  }

  std::mutex mu;  // Guards `buffers` (vector itself) and `last_root`.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  QueryStats last_root;
  std::atomic<int64_t> dropped{0};
};

thread_local int tls_depth = 0;

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          *out += hex;
        } else {
          *out += c;
        }
    }
  }
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

}  // namespace

Span::Span(const char* name)
    : active_(metrics::Enabled()),
      name_(name),
      start_ns_(0),
      start_rss_kb_(0),
      depth_(0) {
  if (!active_) return;
  start_ns_ = NowNanos();
  start_rss_kb_ = PeakRssKb();
  depth_ = tls_depth++;
}

Span::~Span() {
  if (!active_) return;
  --tls_depth;
  const int64_t end_ns = NowNanos();

  SpanEvent ev;
  ev.name = name_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  ev.rss_delta_kb = PeakRssKb() - start_rss_kb_;
  ev.depth = depth_;
  ev.int_attrs = std::move(int_attrs_);
  ev.float_attrs = std::move(float_attrs_);

  Collector& c = Collector::Instance();
  if (depth_ == 0) {
    QueryStats qs;
    qs.valid = true;
    qs.name = ev.name;
    qs.wall_ms = static_cast<double>(ev.dur_ns) / 1e6;
    qs.rss_delta_kb = ev.rss_delta_kb;
    qs.attrs = ev.int_attrs;
    std::lock_guard<std::mutex> lock(c.mu);
    c.last_root = std::move(qs);
  }

  ThreadBuffer* buf = c.ThisThread();
  ev.tid = buf->tid;
  std::lock_guard<std::mutex> lock(buf->mu);
  if (static_cast<int64_t>(buf->events.size()) >= kMaxSpansPerThread) {
    c.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(std::move(ev));
}

void Span::AddAttr(const char* key, int64_t value) {
  if (!active_) return;
  int_attrs_.emplace_back(key, value);
}

void Span::AddAttr(const char* key, double value) {
  if (!active_) return;
  float_attrs_.emplace_back(key, value);
}

std::vector<SpanEvent> Spans() {
  Collector& c = Collector::Instance();
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(c.mu);
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

std::vector<FlatStat> FlatStats() {
  std::map<std::string, FlatStat> agg;
  for (const SpanEvent& ev : Spans()) {
    FlatStat& s = agg[ev.name];
    s.name = ev.name;
    ++s.count;
    s.total_ns += ev.dur_ns;
    s.max_ns = std::max(s.max_ns, ev.dur_ns);
  }
  std::vector<FlatStat> out;
  out.reserve(agg.size());
  for (auto& [name, s] : agg) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const FlatStat& a, const FlatStat& b) {
    return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                    : a.name < b.name;
  });
  return out;
}

std::string ChromeTraceJson() {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : Spans()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(&out, ev.name);
    out += "\",\"cat\":\"ringo\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    out += FormatDouble(static_cast<double>(ev.start_ns) / 1e3);
    out += ",\"dur\":";
    out += FormatDouble(static_cast<double>(ev.dur_ns) / 1e3);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(ev.depth);
    out += ",\"rss_delta_kb\":";
    out += std::to_string(ev.rss_delta_kb);
    for (const auto& [key, value] : ev.int_attrs) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":";
      out += std::to_string(value);
    }
    for (const auto& [key, value] : ev.float_attrs) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":";
      out += FormatDouble(value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

Status ExportChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << ChromeTraceJson();
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

std::string RenderFlatStats() {
  std::ostringstream os;
  os << std::left << std::setw(40) << "span" << std::right << std::setw(10)
     << "count" << std::setw(14) << "total_ms" << std::setw(14) << "max_ms"
     << '\n';
  for (const FlatStat& s : FlatStats()) {
    os << std::left << std::setw(40) << s.name << std::right << std::setw(10)
       << s.count << std::setw(14) << std::fixed << std::setprecision(3)
       << static_cast<double>(s.total_ns) / 1e6 << std::setw(14)
       << static_cast<double>(s.max_ns) / 1e6 << '\n';
    os.unsetf(std::ios::fixed);
  }
  return os.str();
}

QueryStats LastRootSpan() {
  Collector& c = Collector::Instance();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.last_root;
}

int64_t DroppedSpans() {
  return Collector::Instance().dropped.load(std::memory_order_relaxed);
}

int CurrentDepth() { return tls_depth; }

void Clear() {
  Collector& c = Collector::Instance();
  std::lock_guard<std::mutex> lock(c.mu);
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
  }
  c.last_root = QueryStats{};
  c.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace trace
}  // namespace ringo
