#include "util/checksum.h"

#include <array>
#include <cstring>

namespace ringo {

namespace {

// Slice-by-8 tables for the reflected polynomial 0xEDB88320, built once at
// startup. Table 0 is the classic bytewise table; table k folds a byte
// sitting k positions ahead, so the hot loop consumes 8 bytes per step with
// eight independent lookups instead of a serial per-byte chain. The CRC
// values are identical to the bytewise form — only the schedule changes.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = t[0][c & 0xFF] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> t = BuildTables();
  return t;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto& t = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (len >= 8) {
    // Unaligned-safe 8-byte fetch; each memcpy compiles to one load.
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace ringo
