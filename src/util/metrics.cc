#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <memory>
#include <sstream>
#include <iomanip>

namespace ringo {
namespace metrics {

namespace {

constexpr uint32_t kMaxCounters = 256;
constexpr uint32_t kMaxTimers = 64;
// Ids past the shard capacity land here; their adds are dropped.
constexpr uint32_t kOverflowId = UINT32_MAX;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One thread's slice of every counter and timer. Written only by the
// owning thread (relaxed atomics); read by snapshotters from any thread.
struct Shard {
  std::atomic<int64_t> counters[kMaxCounters];
  struct TimerCell {
    std::atomic<int64_t> count;
    std::atomic<int64_t> total_ns;
    std::atomic<int64_t> min_ns;  // INT64_MAX when empty.
    std::atomic<int64_t> max_ns;
    std::atomic<int64_t> buckets[kTimerBuckets];
  } timers[kMaxTimers];

  Shard() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& t : timers) {
      t.count.store(0, std::memory_order_relaxed);
      t.total_ns.store(0, std::memory_order_relaxed);
      t.min_ns.store(INT64_MAX, std::memory_order_relaxed);
      t.max_ns.store(0, std::memory_order_relaxed);
      for (auto& b : t.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

class RegistryImpl {
 public:
  static RegistryImpl& Instance() {
    // Leaked on purpose: shards must outlive any thread that might still
    // record during static destruction.
    static RegistryImpl* r = new RegistryImpl();
    return *r;
  }

  uint32_t InternCounter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counter_ids_.find(std::string(name));
    if (it != counter_ids_.end()) return it->second;
    if (counter_names_.size() >= kMaxCounters) return kOverflowId;
    const uint32_t id = static_cast<uint32_t>(counter_names_.size());
    counter_names_.emplace_back(name);
    counter_ids_.emplace(std::string(name), id);
    return id;
  }

  uint32_t InternTimer(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = timer_ids_.find(std::string(name));
    if (it != timer_ids_.end()) return it->second;
    if (timer_names_.size() >= kMaxTimers) return kOverflowId;
    const uint32_t id = static_cast<uint32_t>(timer_names_.size());
    timer_names_.emplace_back(name);
    timer_ids_.emplace(std::string(name), id);
    return id;
  }

  Shard* ThreadShard() {
    thread_local Shard* shard = nullptr;
    if (shard == nullptr) {
      auto owned = std::make_unique<Shard>();
      shard = owned.get();
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(std::move(owned));
    }
    return shard;
  }

  void GaugeSet(std::string_view name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[std::string(name)] = value;
  }

  double GaugeValue(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(std::string(name));
    return it == gauges_.end() ? 0.0 : it->second;
  }

  int64_t CounterValue(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counter_ids_.find(std::string(name));
    if (it == counter_ids_.end()) return 0;
    int64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s->counters[it->second].load(std::memory_order_relaxed);
    }
    return sum;
  }

  TimerStats TimerValueLocked(uint32_t id) {
    TimerStats out;
    int64_t min_ns = INT64_MAX;
    for (const auto& s : shards_) {
      const auto& t = s->timers[id];
      out.count += t.count.load(std::memory_order_relaxed);
      out.total_ns += t.total_ns.load(std::memory_order_relaxed);
      min_ns = std::min(min_ns, t.min_ns.load(std::memory_order_relaxed));
      out.max_ns = std::max(out.max_ns,
                            t.max_ns.load(std::memory_order_relaxed));
      for (int b = 0; b < kTimerBuckets; ++b) {
        out.buckets[b] += t.buckets[b].load(std::memory_order_relaxed);
      }
    }
    out.min_ns = out.count > 0 ? min_ns : 0;
    return out;
  }

  TimerStats TimerValue(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = timer_ids_.find(std::string(name));
    if (it == timer_ids_.end()) return {};
    return TimerValueLocked(it->second);
  }

  Snapshot TakeSnapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    for (uint32_t id = 0; id < counter_names_.size(); ++id) {
      int64_t sum = 0;
      for (const auto& s : shards_) {
        sum += s->counters[id].load(std::memory_order_relaxed);
      }
      snap.counters.emplace_back(counter_names_[id], sum);
    }
    for (const auto& [name, value] : gauges_) {
      snap.gauges.emplace_back(name, value);
    }
    for (uint32_t id = 0; id < timer_names_.size(); ++id) {
      snap.timers.emplace_back(timer_names_[id], TimerValueLocked(id));
    }
    auto by_name = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.timers.begin(), snap.timers.end(), by_name);
    return snap;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : shards_) {
      for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
      for (auto& t : s->timers) {
        t.count.store(0, std::memory_order_relaxed);
        t.total_ns.store(0, std::memory_order_relaxed);
        t.min_ns.store(INT64_MAX, std::memory_order_relaxed);
        t.max_ns.store(0, std::memory_order_relaxed);
        for (auto& b : t.buckets) b.store(0, std::memory_order_relaxed);
      }
    }
    gauges_.clear();
  }

 private:
  RegistryImpl() = default;

  std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> timer_names_;
  std::map<std::string, uint32_t> counter_ids_;
  std::map<std::string, uint32_t> timer_ids_;
  std::map<std::string, double> gauges_;
};

// -1 = uninitialized (read RINGO_METRICS on first use), 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

bool InitEnabledFromEnv() {
  const char* env = std::getenv("RINGO_METRICS");
  bool on = true;
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
       std::strcmp(env, "false") == 0 || std::strcmp(env, "OFF") == 0)) {
    on = false;
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) == 1;
}

// Relaxed-max/min update loops for the timer extrema.
void AtomicMax(std::atomic<int64_t>& a, int64_t v) {
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void AtomicMin(std::atomic<int64_t>& a, int64_t v) {
  int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int TimerBucket(int64_t nanos) {
  int b = 0;
  uint64_t v = nanos > 0 ? static_cast<uint64_t>(nanos) : 0;
  while (v > 1 && b < kTimerBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

bool Enabled() {
  const int e = g_enabled.load(std::memory_order_relaxed);
  if (e >= 0) return e == 1;
  return InitEnabledFromEnv();
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

uint32_t InternCounter(std::string_view name) {
  return RegistryImpl::Instance().InternCounter(name);
}

void CounterAdd(uint32_t id, int64_t delta) {
  if (id >= kMaxCounters) return;  // Overflowed intern table: dropped.
  RegistryImpl::Instance().ThreadShard()->counters[id].fetch_add(
      delta, std::memory_order_relaxed);
}

int64_t CounterValue(std::string_view name) {
  return RegistryImpl::Instance().CounterValue(name);
}

void GaugeSet(std::string_view name, double value) {
  RegistryImpl::Instance().GaugeSet(name, value);
}

double GaugeValue(std::string_view name) {
  return RegistryImpl::Instance().GaugeValue(name);
}

uint32_t InternTimer(std::string_view name) {
  return RegistryImpl::Instance().InternTimer(name);
}

void TimerRecord(uint32_t id, int64_t nanos) {
  if (id >= kMaxTimers) return;
  auto& cell = RegistryImpl::Instance().ThreadShard()->timers[id];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(cell.min_ns, nanos);
  AtomicMax(cell.max_ns, nanos);
  cell.buckets[TimerBucket(nanos)].fetch_add(1, std::memory_order_relaxed);
}

TimerStats TimerValue(std::string_view name) {
  return RegistryImpl::Instance().TimerValue(name);
}

ScopedTimer::ScopedTimer(uint32_t id)
    : id_(id), start_ns_(Enabled() ? NowNanos() : -1) {}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ >= 0) TimerRecord(id_, NowNanos() - start_ns_);
}

Snapshot TakeSnapshot() { return RegistryImpl::Instance().TakeSnapshot(); }

std::string RenderStatsTable() {
  const Snapshot snap = TakeSnapshot();
  std::ostringstream os;
  os << std::left;
  if (!snap.counters.empty()) {
    os << "-- counters --\n";
    for (const auto& [name, value] : snap.counters) {
      os << "  " << std::setw(40) << name << ' ' << value << '\n';
    }
  }
  if (!snap.gauges.empty()) {
    os << "-- gauges --\n";
    for (const auto& [name, value] : snap.gauges) {
      os << "  " << std::setw(40) << name << ' ' << value << '\n';
    }
  }
  if (!snap.timers.empty()) {
    os << "-- timers --\n";
    for (const auto& [name, t] : snap.timers) {
      os << "  " << std::setw(40) << name << " count=" << t.count
         << " total_ms=" << std::fixed << std::setprecision(3)
         << static_cast<double>(t.total_ns) / 1e6
         << " max_ms=" << static_cast<double>(t.max_ns) / 1e6 << '\n';
      os.unsetf(std::ios::fixed);
    }
  }
  return os.str();
}

void ResetForTest() { RegistryImpl::Instance().Reset(); }

}  // namespace metrics
}  // namespace ringo
