#include "util/radix_sort.h"

#include <atomic>

namespace ringo {

namespace radix {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace radix

void RadixSortU64(uint64_t* keys, int64_t n) {
  internal::LsdRadixSort<1>(keys, n,
                            [](uint64_t k, int) { return k; });
}

void RadixSortI64(int64_t* keys, int64_t n) {
  internal::LsdRadixSort<1>(
      keys, n, [](int64_t k, int) { return radix::Int64Key(k); });
}

void RadixSortI64Pairs(std::pair<int64_t, int64_t>* v, int64_t n) {
  // Word 0 (least significant) is `second`: LSD passes over it first, then
  // `first`, yielding the lexicographic (first, second) order of std::pair.
  internal::LsdRadixSort<2>(
      v, n, [](const std::pair<int64_t, int64_t>& e, int w) {
        return radix::Int64Key(w == 0 ? e.second : e.first);
      });
}

void RadixSortKeyRows(KeyRow* v, int64_t n) {
  internal::LsdRadixSort<1>(
      v, n, [](const KeyRow& r, int) { return r.key; });
}

void RadixSortKeyRows2(KeyRow2* v, int64_t n) {
  internal::LsdRadixSort<2>(
      v, n, [](const KeyRow2& r, int w) { return w == 0 ? r.lo : r.hi; });
}

}  // namespace ringo
