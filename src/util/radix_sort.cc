#include "util/radix_sort.h"

#include <atomic>

#include "util/metrics.h"
#include "util/trace.h"

namespace ringo {

namespace radix {

namespace {
std::atomic<bool> g_enabled{true};

// Shared per-entry-point epilogue: one span per sort with the record count
// and the number of scatter passes that actually ran (pass skipping makes
// this data-dependent, which is exactly why it is worth recording).
void RecordSort(trace::Span& span, int64_t n, int passes) {
  span.AddAttr("n", n);
  span.AddAttr("passes", static_cast<int64_t>(passes));
  RINGO_COUNTER_ADD("radix/sorts", 1);
  RINGO_COUNTER_ADD("radix/passes", passes);
  RINGO_COUNTER_ADD("radix/records", n);
}
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace radix

void RadixSortU64(uint64_t* keys, int64_t n) {
  trace::Span span("radix_sort/u64");
  const int passes = internal::LsdRadixSort<1>(
      keys, n, [](uint64_t k, int) { return k; });
  radix::RecordSort(span, n, passes);
}

void RadixSortI64(int64_t* keys, int64_t n) {
  trace::Span span("radix_sort/i64");
  const int passes = internal::LsdRadixSort<1>(
      keys, n, [](int64_t k, int) { return radix::Int64Key(k); });
  radix::RecordSort(span, n, passes);
}

void RadixSortI64Pairs(std::pair<int64_t, int64_t>* v, int64_t n) {
  // Word 0 (least significant) is `second`: LSD passes over it first, then
  // `first`, yielding the lexicographic (first, second) order of std::pair.
  trace::Span span("radix_sort/i64_pairs");
  const int passes = internal::LsdRadixSort<2>(
      v, n, [](const std::pair<int64_t, int64_t>& e, int w) {
        return radix::Int64Key(w == 0 ? e.second : e.first);
      });
  radix::RecordSort(span, n, passes);
}

void RadixSortKeyRows(KeyRow* v, int64_t n) {
  trace::Span span("radix_sort/key_rows");
  const int passes = internal::LsdRadixSort<1>(
      v, n, [](const KeyRow& r, int) { return r.key; });
  radix::RecordSort(span, n, passes);
}

void RadixSortKeyRows2(KeyRow2* v, int64_t n) {
  trace::Span span("radix_sort/key_rows2");
  const int passes = internal::LsdRadixSort<2>(
      v, n, [](const KeyRow2& r, int w) { return w == 0 ? r.lo : r.hi; });
  radix::RecordSort(span, n, passes);
}

}  // namespace ringo
