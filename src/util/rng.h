// Deterministic pseudo-random number generation. All Ringo generators and
// sampled algorithms take an explicit seed so that experiments are exactly
// reproducible run-to-run; we use SplitMix64 (for seeding / cheap streams)
// and xoshiro256**-style mixing via std::mt19937_64 for distributions.
#ifndef RINGO_UTIL_RNG_H_
#define RINGO_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace ringo {

// SplitMix64: tiny, fast, high-quality 64-bit mixer. Suitable for deriving
// independent per-thread streams from a base seed.
class SplitMix64 {
 public:
  using result_type = uint64_t;

  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Rng: the standard generator handed around Ringo. Deterministic for a given
// seed; convenience helpers cover the distributions the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(SplitMix64(seed)()) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  uint64_t Next() { return engine_(); }

  // Derives an independent generator, e.g. one per worker thread.
  Rng Split(uint64_t stream) {
    SplitMix64 mix(engine_() ^ (0xA5A5A5A5A5A5A5A5ULL * (stream + 1)));
    return Rng(mix());
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ringo

#endif  // RINGO_UTIL_RNG_H_
