#include "util/cancel.h"

namespace ringo {
namespace cancel {

namespace {
thread_local CancelToken* g_current_token = nullptr;
}  // namespace

CancelToken* CurrentToken() { return g_current_token; }

ScopedToken::ScopedToken(CancelToken* token) : prev_(g_current_token) {
  g_current_token = token;
}

ScopedToken::~ScopedToken() { g_current_token = prev_; }

bool Checkpoint() {
  const CancelToken* t = g_current_token;
  return t != nullptr && t->ShouldStop();
}

}  // namespace cancel
}  // namespace ringo
