// Status: lightweight error propagation for Ringo, modeled on the
// Arrow/RocksDB idiom. Functions that can fail return a Status (or a
// Result<T>, see util/result.h) instead of throwing; hot paths stay
// exception-free.
#ifndef RINGO_UTIL_STATUS_H_
#define RINGO_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace ringo {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeMismatch = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kCorruption = 9,
  kDeadlineExceeded = 10,
  kOverloaded = 11,
};

// Returns a stable human-readable name for `code` ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

// A Status holds either success (the common case, represented without any
// allocation) or an error code plus message. Statuses are cheap to move and
// to copy in the OK case.
class Status {
 public:
  // Default constructed Status is OK.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // Malformed or inconsistent persisted data (files that parse but violate
  // the format), as opposed to kIOError for filesystem-level failures.
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  // The query's deadline passed before (or while) it ran; any partial
  // result was discarded (src/serve/engine.h).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  // The serving engine's admission queue was full and the query was shed
  // instead of queued unboundedly; safe to retry after backoff.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeMismatch() const { return code() == StatusCode::kTypeMismatch; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  // Aborts the process with the status message if not OK. Use only where an
  // error genuinely indicates a programming bug.
  void Abort(const char* context = nullptr) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ringo

// Propagates a non-OK Status to the caller.
#define RINGO_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::ringo::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

// Aborts on a non-OK Status; for contexts (tests, examples) where failure is
// a bug rather than a recoverable condition.
#define RINGO_CHECK_OK(expr)                       \
  do {                                             \
    ::ringo::Status _st = (expr);                  \
    if (!_st.ok()) _st.Abort(#expr);               \
  } while (false)

#endif  // RINGO_UTIL_STATUS_H_
