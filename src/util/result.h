// Result<T>: value-or-Status, the companion of util/status.h for functions
// that produce a value. Mirrors arrow::Result semantics.
#ifndef RINGO_UTIL_RESULT_H_
#define RINGO_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace ringo {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from a (non-OK) Status keeps call
  // sites natural: `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  // Accessors require ok(); checked in debug builds.
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value, aborting the process if the Result holds an error.
  T ValueOrDie() && {
    if (!ok()) status().Abort("Result::ValueOrDie");
    return std::get<T>(std::move(v_));
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace ringo

// Evaluates `rexpr` (a Result<T>), propagating its Status on error;
// otherwise assigns the value to `lhs`. `lhs` may include a declaration:
//   RINGO_ASSIGN_OR_RETURN(auto table, LoadTableTSV(...));
#define RINGO_CONCAT_IMPL_(x, y) x##y
#define RINGO_CONCAT_(x, y) RINGO_CONCAT_IMPL_(x, y)
#define RINGO_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto RINGO_CONCAT_(_ringo_result_, __LINE__) = (rexpr);           \
  if (!RINGO_CONCAT_(_ringo_result_, __LINE__).ok())                \
    return RINGO_CONCAT_(_ringo_result_, __LINE__).status();        \
  lhs = std::move(RINGO_CONCAT_(_ringo_result_, __LINE__)).value()

#endif  // RINGO_UTIL_RESULT_H_
