// RAII trace spans (DESIGN.md §8): the structured side of Ringo's
// observability layer. A span brackets one operator (or one phase of an
// operator), records wall time, the peak-RSS delta across its lifetime,
// and custom numeric attributes (rows, edges, radix passes, rehash
// counts), and nests: spans opened while another span is live on the same
// thread become its children (depth-tracked; the Chrome viewer nests by
// timestamps).
//
//   Result<TablePtr> Table::OrderBy(...) {
//     RINGO_TRACE_SPAN("Table/OrderBy");
//     ...
//   }
//
//   trace::Span span("TableToGraph/sort");
//   span.AddAttr("rows", n);
//
// Completed spans land in per-thread buffers (appends take only the
// owning buffer's uncontended mutex) capped at kMaxSpansPerThread;
// overflow is dropped and counted, never blocking the workload. Exports:
//   * ChromeTraceJson() / ExportChromeTrace(path) — Chrome trace_event
//     JSON ("X" complete events; open chrome://tracing or Perfetto);
//   * FlatStats() — per-name aggregate (count, total, max) for the flat
//     stats table;
//   * LastRootSpan() — the most recently completed depth-0 span, backing
//     Ringo::LastQueryStats().
//
// Spans obey metrics::Enabled(): when metrics are off a span costs one
// relaxed load in the constructor and nothing else.
#ifndef RINGO_UTIL_TRACE_H_
#define RINGO_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ringo {
namespace trace {

// Per-thread completed-span cap; beyond it spans are dropped (see
// DroppedSpans). Generous for operator-level tracing: a benchmark loop
// producing ~10 spans per iteration fills it after ~6k iterations.
constexpr int64_t kMaxSpansPerThread = int64_t{1} << 16;

class Span {
 public:
  // `name` must outlive the span (string literals in practice).
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a numeric attribute; exported into the Chrome "args" object
  // and LastRootSpan(). No-ops when the span is inactive.
  void AddAttr(const char* key, int64_t value);
  void AddAttr(const char* key, double value);

  bool active() const { return active_; }

 private:
  bool active_;
  const char* name_;
  int64_t start_ns_;
  int64_t start_rss_kb_;
  int depth_;
  std::vector<std::pair<std::string, int64_t>> int_attrs_;
  std::vector<std::pair<std::string, double>> float_attrs_;
};

// One completed span, as stored in the thread buffers and returned by
// Spans() for tests and custom exporters.
struct SpanEvent {
  std::string name;
  int64_t start_ns = 0;      // Relative to the process trace epoch.
  int64_t dur_ns = 0;
  int64_t rss_delta_kb = 0;  // Peak-RSS growth while the span was open.
  int tid = 0;               // Dense per-thread index.
  int depth = 0;             // 0 = root span.
  std::vector<std::pair<std::string, int64_t>> int_attrs;
  std::vector<std::pair<std::string, double>> float_attrs;
};

// Aggregate of all completed spans sharing a name.
struct FlatStat {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
};

// Summary of the most recent completed root (depth-0) span; the engine
// surfaces this as Ringo::LastQueryStats().
struct QueryStats {
  bool valid = false;
  std::string name;
  double wall_ms = 0.0;
  int64_t rss_delta_kb = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
};

// Copies of every buffered span (start-time ordered within a thread, not
// globally). Safe while other threads keep tracing.
std::vector<SpanEvent> Spans();

// Per-name aggregates sorted by total time descending.
std::vector<FlatStat> FlatStats();

// Chrome trace_event JSON ({"traceEvents": [...]}); microsecond
// timestamps, pid 1, one tid per recording thread.
std::string ChromeTraceJson();
Status ExportChromeTrace(const std::string& path);

// Aligned text rendering of FlatStats().
std::string RenderFlatStats();

QueryStats LastRootSpan();

// Spans discarded because a thread buffer was full.
int64_t DroppedSpans();

// Nesting depth of the calling thread (open spans). For tests.
int CurrentDepth();

// Discards all buffered spans and the last-root record. Buffers of
// threads holding open spans survive (their events complete later).
void Clear();

}  // namespace trace
}  // namespace ringo

#define RINGO_TRACE_CONCAT_(a, b) a##b
#define RINGO_TRACE_CONCAT(a, b) RINGO_TRACE_CONCAT_(a, b)

// Opens an anonymous span covering the rest of the enclosing scope. For
// spans that need attributes, declare a named `trace::Span` instead.
#define RINGO_TRACE_SPAN(name) \
  ::ringo::trace::Span RINGO_TRACE_CONCAT(_ringo_trace_span_, __LINE__)(name)

#endif  // RINGO_UTIL_TRACE_H_
