// Parallel LSD radix sort — the distribution-sort backbone behind the
// sort-first table→graph conversion (§2.4) and the sort-driven table
// operators (§2.3). Where ParallelSort (parallel.h) runs an indirect
// comparison per element, this kernel moves records by their key bytes:
// per-part histograms → exclusive prefix sums → contention-free scatter
// into a ping-pong buffer, one pass per non-constant key byte.
//
// Properties:
//   * stable: records with equal keys keep their input order, so sorting
//     (key, row) records with ascending row input yields the same
//     permutation as a comparison sort with a position tiebreak;
//   * deterministic for every thread count: parts write disjoint output
//     slices computed from prefix sums, so the output (and every
//     intermediate pass) is a pure function of the input;
//   * pass skipping: byte positions on which all keys agree (detected by
//     one OR/AND reduction) are skipped, so sorting 64-bit keys that fit
//     in 32 bits costs 4 scatter passes, not 8;
//   * sequential fallback below a cutoff (and a std::stable_sort leaf for
//     tiny inputs) — both produce bit-identical output to the parallel
//     path.
//
// Keys are uint64 words already normalized to unsigned order; the
// normalizations for signed ints and floats live here (Int64Key /
// FloatKey), the string-rank normalization lives in the table layer
// (table/key_normalize.h), which also documents when operators pick this
// kernel over the comparison sort.
#ifndef RINGO_UTIL_RADIX_SORT_H_
#define RINGO_UTIL_RADIX_SORT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace ringo {

namespace radix {

// Global kill switch (testing and ablation): when disabled, every caller
// falls back to the comparison ParallelSort path. The two paths are
// bit-identical by construction; the toggle exists to prove it.
bool Enabled();
void SetEnabled(bool on);

// Order-preserving normalization of a signed int64 to unsigned key space:
// flipping the sign bit maps INT64_MIN..INT64_MAX onto 0..UINT64_MAX.
inline uint64_t Int64Key(int64_t v) {
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

// Order-preserving normalization of a double to total-order bits:
// positive values get the sign bit set, negative values are bitwise
// complemented (so more-negative sorts lower). -0.0 is collapsed onto
// +0.0 first, matching the comparison path where the two are equal. All
// NaNs (any payload, either sign) map to one canonical key above +inf's —
// the documented NaN-last total order: -inf < finite < +inf < NaN, every
// NaN equal. RowComparator implements the same order on the comparison
// path, so radix and comparator sorts agree on columns containing NaN.
// (No real double maps to the canonical key: it would need exponent and
// mantissa bits all set, which is itself a NaN pattern.)
inline constexpr uint64_t kFloatNanKey = ~uint64_t{0};
inline uint64_t FloatKey(double v) {
  if (std::isnan(v)) return kFloatNanKey;
  if (v == 0.0) v = 0.0;  // Collapse -0.0 onto +0.0.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return (bits & (uint64_t{1} << 63)) ? ~bits : (bits | (uint64_t{1} << 63));
}

}  // namespace radix

namespace internal {

// Below this size the passes run on one part (no parallel regions).
constexpr int64_t kRadixSeqCutoff = 1 << 14;
// Below this size a std::stable_sort on the key words replaces the LSD
// machinery entirely (identical output, no histograms or scratch scans).
// The crossover is lower than it looks: with pass skipping, thousand-row
// inputs with narrow keys run 3-4 branchless scatter passes and beat the
// comparison sort well before the histograms amortize in theory.
constexpr int64_t kRadixTinyCutoff = 256;

// Core kernel: stable LSD sort of `data[0, n)` by W 64-bit key words.
// key_of(record, w) must return word w of the record's normalized key,
// w = 0 being the LEAST significant word. Records move through the
// ping-pong buffer by copy assignment and are never destroyed
// individually, so they must be trivially destructible and cheaply
// assignable (plain structs of scalars; std::pair of scalars qualifies
// despite its user-provided assignment operator).
//
// Returns the number of scatter passes executed (0 when the tiny-input
// stable_sort leaf ran) — the observability layer records it per sort.
template <int W, typename R, typename KeyFn>
int LsdRadixSort(R* data, int64_t n, KeyFn key_of) {
  static_assert(W >= 1);
  static_assert(std::is_trivially_destructible_v<R> &&
                    std::is_copy_assignable_v<R> &&
                    std::is_default_constructible_v<R>,
                "radix sort records must be POD-like");
  if (n <= 1) return 0;
  if (n <= kRadixTinyCutoff) {
    std::stable_sort(data, data + n, [&](const R& a, const R& b) {
      for (int w = W - 1; w >= 0; --w) {
        const uint64_t ka = key_of(a, w), kb = key_of(b, w);
        if (ka != kb) return ka < kb;
      }
      return false;
    });
    return 0;
  }

  const int parts = n <= kRadixSeqCutoff ? 1 : std::max(1, NumThreads());
  const std::vector<int64_t> bounds = PartitionRange(n, parts);

  // OR/AND reduction over all key words: byte positions where every key
  // agrees (or ^ and == 0 on that byte) are identity passes and skipped.
  uint64_t key_or[W], key_and[W];
  {
    std::vector<uint64_t> part_or(static_cast<size_t>(parts) * W, 0);
    std::vector<uint64_t> part_and(static_cast<size_t>(parts) * W,
                                   ~uint64_t{0});
    auto scan = [&](int64_t p) {
      uint64_t o[W], a[W];
      for (int w = 0; w < W; ++w) {
        o[w] = 0;
        a[w] = ~uint64_t{0};
      }
      for (int64_t i = bounds[p]; i < bounds[p + 1]; ++i) {
        for (int w = 0; w < W; ++w) {
          const uint64_t k = key_of(data[i], w);
          o[w] |= k;
          a[w] &= k;
        }
      }
      for (int w = 0; w < W; ++w) {
        part_or[p * W + w] = o[w];
        part_and[p * W + w] = a[w];
      }
    };
    if (parts == 1) {
      scan(0);
    } else {
      ParallelFor(0, parts, scan);
    }
    for (int w = 0; w < W; ++w) {
      key_or[w] = 0;
      key_and[w] = ~uint64_t{0};
    }
    for (int p = 0; p < parts; ++p) {
      for (int w = 0; w < W; ++w) {
        key_or[w] |= part_or[p * W + w];
        key_and[w] &= part_and[p * W + w];
      }
    }
  }

  // Scratch is written in full before it is read; default-init keeps
  // trivial record types uninitialized.
  std::unique_ptr<R[]> scratch(new R[n]);
  R* src = data;
  R* dst = scratch.get();
  std::vector<int64_t> hist(static_cast<size_t>(parts) * 256);
  int passes_run = 0;

  for (int pass = 0; pass < 8 * W; ++pass) {
    const int w = pass / 8;
    const int shift = 8 * (pass % 8);
    if ((((key_or[w] ^ key_and[w]) >> shift) & 0xFF) == 0) continue;
    ++passes_run;

    // Per-part histograms of this pass's digit.
    std::fill(hist.begin(), hist.end(), 0);
    auto count = [&](int64_t p) {
      int64_t* h = &hist[p * 256];
      for (int64_t i = bounds[p]; i < bounds[p + 1]; ++i) {
        ++h[(key_of(src[i], w) >> shift) & 0xFF];
      }
    };
    if (parts == 1) {
      count(0);
    } else {
      ParallelFor(0, parts, count);
    }

    // Exclusive prefix sums, digit-major then part-major, turn the counts
    // into each part's first write position per digit. Every (part, digit)
    // output slice is disjoint, so the scatter below is contention-free.
    int64_t sum = 0;
    for (int d = 0; d < 256; ++d) {
      for (int p = 0; p < parts; ++p) {
        int64_t& h = hist[p * 256 + d];
        const int64_t c = h;
        h = sum;
        sum += c;
      }
    }

    auto scatter = [&](int64_t p) {
      int64_t* off = &hist[p * 256];
      for (int64_t i = bounds[p]; i < bounds[p + 1]; ++i) {
        dst[off[(key_of(src[i], w) >> shift) & 0xFF]++] = src[i];
      }
    };
    if (parts == 1) {
      scatter(0);
    } else {
      ParallelFor(0, parts, scatter);
    }
    std::swap(src, dst);
  }

  if (src != data) {
    auto copy_back = [&](int64_t p) {
      std::copy(src + bounds[p], src + bounds[p + 1], data + bounds[p]);
    };
    if (parts == 1) {
      copy_back(0);
    } else {
      ParallelFor(0, parts, copy_back);
    }
  }
  return passes_run;
}

}  // namespace internal

// (key, payload) record: sorted by key, input order preserved on ties —
// with row = 0..n-1 on input this is exactly the comparison sort with a
// position tiebreak.
struct KeyRow {
  uint64_t key;
  int64_t row;
};

// Two-word composite (hi major, lo minor) + payload.
struct KeyRow2 {
  uint64_t hi;
  uint64_t lo;
  int64_t row;
};

// Concrete entry points (radix_sort.cc). All are stable, deterministic
// for every thread count, and safe for n == 0.
void RadixSortU64(uint64_t* keys, int64_t n);
void RadixSortI64(int64_t* keys, int64_t n);          // Signed order.
void RadixSortI64Pairs(std::pair<int64_t, int64_t>* v,
                       int64_t n);                    // By (first, second).
void RadixSortKeyRows(KeyRow* v, int64_t n);
void RadixSortKeyRows2(KeyRow2* v, int64_t n);

inline void RadixSortU64(std::vector<uint64_t>& v) {
  RadixSortU64(v.data(), static_cast<int64_t>(v.size()));
}
inline void RadixSortI64(std::vector<int64_t>& v) {
  RadixSortI64(v.data(), static_cast<int64_t>(v.size()));
}

}  // namespace ringo

#endif  // RINGO_UTIL_RADIX_SORT_H_
