// CRC-32 (ISO-HDLC polynomial, the zlib/PNG one), table-driven. Guards the
// .rtb binary table format's header, directory, and column segments
// (DESIGN.md §14): cheap enough to verify at load, strong enough to catch
// truncation and bit rot.
#ifndef RINGO_UTIL_CHECKSUM_H_
#define RINGO_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace ringo {

// One-shot CRC-32 of a byte range.
uint32_t Crc32(const void* data, size_t len);

// Incremental form: feed `crc` from the previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace ringo

#endif  // RINGO_UTIL_CHECKSUM_H_
