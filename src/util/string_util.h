// Small string helpers shared by the TSV loader and the table engine.
#ifndef RINGO_UTIL_STRING_UTIL_H_
#define RINGO_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ringo {

// Splits `line` on `delim` without copying. Empty fields are preserved.
std::vector<std::string_view> SplitFields(std::string_view line, char delim);

// Splits `line` on runs of whitespace (spaces and tabs) without copying,
// the way SNAP edge lists tokenize. Leading/trailing whitespace is
// ignored; no empty fields are produced.
std::vector<std::string_view> SplitWhitespace(std::string_view line);

// Strict numeric parsers: the whole field must parse, surrounding
// whitespace is rejected.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Human-readable byte count, e.g. "13.2GB" — used to print Table 2 the way
// the paper formats it.
std::string FormatBytes(int64_t bytes);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace ringo

#endif  // RINGO_UTIL_STRING_UTIL_H_
