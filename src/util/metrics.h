// Process-wide metrics registry (DESIGN.md §8): monotonic counters, gauges,
// and histogram timers behind stable string names. The hot path — a counter
// increment or a timer record from inside an operator — touches only the
// calling thread's shard (a relaxed atomic add on a thread-owned cache
// line), so instrumented code stays TSan-clean and scales with no shared
// contention; readers merge every shard on demand.
//
// Cost model:
//   * disabled (RINGO_METRICS=off or SetEnabled(false)): one relaxed atomic
//     load per RINGO_COUNTER_ADD / timer record — near-zero;
//   * enabled: name→id interning happens once per call site (function-local
//     static); the per-event cost is one TLS lookup + one relaxed
//     fetch_add.
//
// Counters are monotonic and survive thread exit (a thread's shard is owned
// by the registry, not the thread). Gauges are last-writer-wins and stored
// centrally (they are set rarely). Timers record nanosecond durations into
// count/sum/min/max plus log2 buckets, enough for the flat stats table and
// coarse percentiles.
//
// See util/trace.h for the structured (nested span) side of observability.
#ifndef RINGO_UTIL_METRICS_H_
#define RINGO_UTIL_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ringo {
namespace metrics {

// Runtime switch. Initialized lazily from the RINGO_METRICS environment
// variable ("off"/"0"/"false" disable; anything else — including unset —
// enables). SetEnabled overrides the environment for the rest of the
// process (used by tests and the overhead ablation).
bool Enabled();
void SetEnabled(bool on);

// ---------------------------------------------------------------- counters
// Interns `name` to a dense id; stable for the process lifetime. The shard
// capacity is fixed (kMaxCounters); names interned past it map to a
// sentinel id whose adds are dropped (and counted in "metrics/dropped").
uint32_t InternCounter(std::string_view name);
void CounterAdd(uint32_t id, int64_t delta);

// Merged value across all shards (0 for unknown names).
int64_t CounterValue(std::string_view name);

// ------------------------------------------------------------------ gauges
void GaugeSet(std::string_view name, double value);
double GaugeValue(std::string_view name);  // 0.0 for unknown names.

// ------------------------------------------------------------------ timers
constexpr int kTimerBuckets = 40;  // log2(ns) buckets, clamped.

struct TimerStats {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;  // 0 when count == 0.
  int64_t max_ns = 0;
  int64_t buckets[kTimerBuckets] = {};
};

uint32_t InternTimer(std::string_view name);
void TimerRecord(uint32_t id, int64_t nanos);
TimerStats TimerValue(std::string_view name);

// A RAII stopwatch recording into a timer on destruction (only when
// metrics are enabled at construction time).
class ScopedTimer {
 public:
  explicit ScopedTimer(uint32_t id);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint32_t id_;
  int64_t start_ns_;  // -1 when inactive.
};

// ---------------------------------------------------------------- snapshot
struct Snapshot {
  std::vector<std::pair<std::string, int64_t>> counters;  // Name-sorted.
  std::vector<std::pair<std::string, double>> gauges;     // Name-sorted.
  std::vector<std::pair<std::string, TimerStats>> timers; // Name-sorted.
};

// Merges every shard; safe to call while other threads keep recording
// (their in-flight increments land in a later snapshot).
Snapshot TakeSnapshot();

// Aligned text rendering of TakeSnapshot() for logs and the shell.
std::string RenderStatsTable();

// Zeroes all counter/timer cells and gauges. Interned ids stay valid.
// Intended for tests and benchmark phase boundaries only: concurrent
// writers may survive a reset with partial counts.
void ResetForTest();

}  // namespace metrics
}  // namespace ringo

// Adds `delta` to the named monotonic counter. `name` must be a string
// literal (or otherwise outlive the process); interning cost is paid once
// per call site.
#define RINGO_COUNTER_ADD(name, delta)                                   \
  do {                                                                   \
    if (::ringo::metrics::Enabled()) {                                   \
      static const uint32_t _ringo_metrics_cid =                         \
          ::ringo::metrics::InternCounter(name);                         \
      ::ringo::metrics::CounterAdd(_ringo_metrics_cid,                   \
                                   static_cast<int64_t>(delta));         \
    }                                                                    \
  } while (0)

// Times the enclosing scope into the named histogram timer.
#define RINGO_SCOPED_TIMER(name)                                         \
  static const uint32_t _ringo_metrics_tid_##__LINE__ =                  \
      ::ringo::metrics::InternTimer(name);                               \
  ::ringo::metrics::ScopedTimer _ringo_metrics_timer_##__LINE__(         \
      _ringo_metrics_tid_##__LINE__)

#endif  // RINGO_UTIL_METRICS_H_
