// Minimal leveled logging plus CHECK macros, in the style of glog-lite
// loggers used by Arrow and RocksDB. Logging goes to stderr; the level is
// configurable at runtime (default: WARNING, so library use is quiet).
#ifndef RINGO_UTIL_LOGGING_H_
#define RINGO_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ringo {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits the message; aborts the process for kFatal.

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

// Swallows a streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

}  // namespace internal
}  // namespace ringo

#define RINGO_LOG(level)                                                    \
  ::ringo::internal::LogMessage(::ringo::LogLevel::k##level, __FILE__,      \
                                __LINE__)

// CHECK: always-on invariant assertion. Prefer these over assert() for
// conditions that guard memory safety; they survive release builds.
#define RINGO_CHECK(cond)                                                   \
  if (cond) {                                                               \
  } else                                                                    \
    RINGO_LOG(Fatal) << "Check failed: " #cond " "

#define RINGO_CHECK_EQ(a, b) RINGO_CHECK((a) == (b))
#define RINGO_CHECK_NE(a, b) RINGO_CHECK((a) != (b))
#define RINGO_CHECK_LT(a, b) RINGO_CHECK((a) < (b))
#define RINGO_CHECK_LE(a, b) RINGO_CHECK((a) <= (b))
#define RINGO_CHECK_GT(a, b) RINGO_CHECK((a) > (b))
#define RINGO_CHECK_GE(a, b) RINGO_CHECK((a) >= (b))

#ifndef NDEBUG
#define RINGO_DCHECK(cond) RINGO_CHECK(cond)
#else
#define RINGO_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::ringo::internal::NullStream()
#endif

#endif  // RINGO_UTIL_LOGGING_H_
