#include "util/string_util.h"

#include <charconv>
#include <cstdio>

namespace ringo {

std::vector<std::string_view> SplitFields(std::string_view line, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const auto is_ws = [](char c) { return c == ' ' || c == '\t'; };
  while (i < line.size()) {
    while (i < line.size() && is_ws(line[i])) ++i;
    if (i >= line.size()) break;
    size_t j = i;
    while (j < line.size() && !is_ws(line[j])) ++j;
    out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || s.empty()) {
    return Status::InvalidArgument("cannot parse integer: '" +
                                   std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  double value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || s.empty()) {
    return Status::InvalidArgument("cannot parse float: '" + std::string(s) +
                                   "'");
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ringo
