#include "util/parallel.h"

#include <atomic>

#include "util/logging.h"

namespace ringo {

namespace {
std::atomic<int> g_thread_cap{0};  // 0 = use OpenMP default.
}  // namespace

int NumThreads() {
  const int cap = g_thread_cap.load(std::memory_order_relaxed);
  const int omp = omp_get_max_threads();
  return cap > 0 ? std::min(cap, omp) : omp;
}

void SetNumThreads(int n) {
  RINGO_CHECK_GE(n, 0);
  g_thread_cap.store(n, std::memory_order_relaxed);
  if (n > 0) omp_set_num_threads(n);
}

int64_t ExclusivePrefixSum(const int64_t* in, int64_t* out, int64_t n) {
  if (n == 0) return 0;
  const int threads = NumThreads();
  if (threads <= 1 || n < (1 << 15)) {
    int64_t acc = 0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t v = in[i];
      out[i] = acc;
      acc += v;
    }
    return acc;
  }

  const std::vector<int64_t> bounds = PartitionRange(n, threads);
  std::vector<int64_t> part_totals(threads, 0);
  const int64_t* const bounds_data = bounds.data();
  int64_t* const part_totals_data = part_totals.data();
  // The fence makes the inter-pass ordering (libgomp barriers, invisible to
  // TSan) explicit; the ignore windows cover only the reads of the
  // compiler-generated argument block — see the header comment in parallel.h.
  internal::RegionFence fence;
  internal::RegionFence* const fence_ptr = &fence;
  fence.Publish();
#pragma omp parallel num_threads(threads)
  {
    RINGO_TSAN_IGNORE_READS_BEGIN();
    const int64_t* const rb = internal::HandoffRead(bounds_data);
    int64_t* const rp = internal::HandoffRead(part_totals_data);
    const int64_t* const rin = internal::HandoffRead(in);
    int64_t* const rout = internal::HandoffRead(out);
    const int rthreads = internal::HandoffRead(threads);
    internal::RegionFence* const fc = internal::HandoffRead(fence_ptr);
    RINGO_TSAN_IGNORE_READS_END();
    fc->Observe();
    const int t = omp_get_thread_num();
    if (t < rthreads) {
      int64_t acc = 0;
      for (int64_t i = rb[t]; i < rb[t + 1]; ++i) {
        const int64_t v = rin[i];
        rout[i] = acc;
        acc += v;
      }
      rp[t] = acc;
    }
    fc->Publish();
  }
  fence.Observe();
  std::vector<int64_t> offsets(threads, 0);
  int64_t total = 0;
  for (int t = 0; t < threads; ++t) {
    offsets[t] = total;
    total += part_totals[t];
  }
  const int64_t* const offsets_data = offsets.data();
  fence.Publish();
#pragma omp parallel num_threads(threads)
  {
    RINGO_TSAN_IGNORE_READS_BEGIN();
    const int64_t* const rb = internal::HandoffRead(bounds_data);
    const int64_t* const roff = internal::HandoffRead(offsets_data);
    int64_t* const rout = internal::HandoffRead(out);
    const int rthreads = internal::HandoffRead(threads);
    internal::RegionFence* const fc = internal::HandoffRead(fence_ptr);
    RINGO_TSAN_IGNORE_READS_END();
    fc->Observe();
    const int t = omp_get_thread_num();
    if (t < rthreads && roff[t] != 0) {
      for (int64_t i = rb[t]; i < rb[t + 1]; ++i) {
        rout[i] += roff[t];
      }
    }
    fc->Publish();
  }
  fence.Observe();
  return total;
}

std::vector<int64_t> PartitionRange(int64_t n, int parts) {
  RINGO_CHECK_GT(parts, 0);
  std::vector<int64_t> bounds(parts + 1);
  const int64_t base = n / parts;
  const int64_t extra = n % parts;
  bounds[0] = 0;
  for (int t = 0; t < parts; ++t) {
    bounds[t + 1] = bounds[t] + base + (t < extra ? 1 : 0);
  }
  return bounds;
}

}  // namespace ringo
