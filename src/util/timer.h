// Wall-clock timing helpers used by the benchmark harness and by the
// examples to report interactive-use latencies the way the paper does.
#ifndef RINGO_UTIL_TIMER_H_
#define RINGO_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ringo {

// A simple monotonic stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ringo

#endif  // RINGO_UTIL_TIMER_H_
