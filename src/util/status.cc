#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ringo {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "Invalid argument";
    case StatusCode::kNotFound: return "Not found";
    case StatusCode::kAlreadyExists: return "Already exists";
    case StatusCode::kOutOfRange: return "Out of range";
    case StatusCode::kTypeMismatch: return "Type mismatch";
    case StatusCode::kIOError: return "IO error";
    case StatusCode::kNotImplemented: return "Not implemented";
    case StatusCode::kInternal: return "Internal error";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kDeadlineExceeded: return "Deadline exceeded";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) return;
  if (context != nullptr) {
    std::fprintf(stderr, "ringo: fatal status in %s: %s\n", context,
                 ToString().c_str());
  } else {
    std::fprintf(stderr, "ringo: fatal status: %s\n", ToString().c_str());
  }
  std::abort();
}

}  // namespace ringo
