// Shared graph-engine type definitions.
#ifndef RINGO_GRAPH_GRAPH_DEFS_H_
#define RINGO_GRAPH_GRAPH_DEFS_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace ringo {

// Node identifiers are arbitrary 64-bit integers chosen by the user (they
// typically come straight out of a table column, §2.4); they need not be
// dense or contiguous.
using NodeId = int64_t;

// A directed edge (source, destination).
using Edge = std::pair<NodeId, NodeId>;

struct PairHash {
  size_t operator()(const Edge& e) const {
    // Combine with the 64-bit golden-ratio multiplier; the flat map applies
    // a finalizing mixer on top.
    return static_cast<size_t>(
        static_cast<uint64_t>(e.first) * 0x9E3779B97F4A7C15ULL +
        static_cast<uint64_t>(e.second));
  }
};

}  // namespace ringo

#endif  // RINGO_GRAPH_GRAPH_DEFS_H_
