// EdgeWeights: a side table mapping directed edges to double weights.
// Ringo graphs are unweighted (matching SNAP's TNGraph); weighted
// algorithms (Dijkstra, MST) take an EdgeWeights alongside the graph.
#ifndef RINGO_GRAPH_EDGE_WEIGHTS_H_
#define RINGO_GRAPH_EDGE_WEIGHTS_H_

#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"

namespace ringo {

class EdgeWeights {
 public:
  EdgeWeights() = default;

  void Reserve(int64_t n) { w_.Reserve(n); }

  // Sets the weight of src→dst (inserting or overwriting).
  void Set(NodeId src, NodeId dst, double w) {
    *w_.Insert({src, dst}, w).first = w;
  }

  // Sets the weight in both directions (for undirected use).
  void SetSymmetric(NodeId u, NodeId v, double w) {
    Set(u, v, w);
    Set(v, u, w);
  }

  // Returns the weight, or `fallback` if the edge has no entry.
  double Get(NodeId src, NodeId dst, double fallback = 1.0) const {
    const double* w = w_.Find({src, dst});
    return w == nullptr ? fallback : *w;
  }

  bool Contains(NodeId src, NodeId dst) const {
    return w_.Contains({src, dst});
  }

  int64_t size() const { return w_.size(); }

 private:
  FlatHashMap<Edge, double, PairHash> w_;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_EDGE_WEIGHTS_H_
