// UndirectedGraph: hash-table-of-nodes representation with one sorted
// adjacency vector per node. Each edge {u, v} appears in both endpoints'
// vectors (a self-loop appears once). Used for triangle counting,
// clustering coefficients, k-core and community algorithms.
#ifndef RINGO_GRAPH_UNDIRECTED_GRAPH_H_
#define RINGO_GRAPH_UNDIRECTED_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/delta_journal.h"
#include "graph/edge_batch.h"
#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"

namespace ringo {

class DirectedGraph;

class UndirectedGraph {
 public:
  struct NodeData {
    std::vector<NodeId> nbrs;  // Sorted ascending.
  };
  using NodeTable = FlatHashMap<NodeId, NodeData>;

  UndirectedGraph() = default;

  void ReserveNodes(int64_t n) { nodes_.Reserve(n); }

  bool AddNode(NodeId id);
  NodeId AddNode();

  // Adds the undirected edge {src, dst}, creating missing endpoints.
  // Returns true if new.
  bool AddEdge(NodeId src, NodeId dst);
  bool DelEdge(NodeId src, NodeId dst);

  // Batched counterpart of AddEdge/DelEdge: inserts first, then deletes.
  // Edge pairs are unordered here — (u, v) and (v, u) name the same edge
  // and are normalized before dedup. See DirectedGraph::ApplyEdgeBatch and
  // DESIGN.md §11 for the full contract (single stamp bump, journaled net
  // ops, parallel per-node merges).
  EdgeBatchStats ApplyEdgeBatch(std::vector<Edge> inserts,
                                std::vector<Edge> deletes);

  bool DelNode(NodeId id);

  bool HasNode(NodeId id) const { return nodes_.Contains(id); }
  bool HasEdge(NodeId src, NodeId dst) const;

  int64_t NumNodes() const { return nodes_.size(); }
  // Each undirected edge counted once.
  int64_t NumEdges() const { return num_edges_; }

  int64_t Degree(NodeId id) const;
  const NodeData* GetNode(NodeId id) const { return nodes_.Find(id); }

  std::vector<NodeId> NodeIds() const { return nodes_.Keys(); }
  std::vector<NodeId> SortedNodeIds() const;

  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    nodes_.ForEach(fn);
  }

  // Applies fn(u, v) once per undirected edge with u <= v.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    nodes_.ForEach([&](NodeId u, const NodeData& nd) {
      for (NodeId v : nd.nbrs) {
        if (u <= v) fn(u, v);
      }
    });
  }

  const NodeTable& node_table() const { return nodes_; }
  NodeTable& mutable_node_table() {
    BumpStamp();
    return nodes_;
  }
  void BumpEdgeCount(int64_t count) {
    num_edges_ += count;
    BumpStamp();
  }
  void NoteMaxNodeId(NodeId id) { next_node_id_ = std::max(next_node_id_, id + 1); }

  int64_t MemoryUsageBytes() const;
  bool SameStructure(const UndirectedGraph& other) const;

  // Mutation stamp + cached analytics view; see DirectedGraph and
  // DESIGN.md §9 for the contract.
  uint64_t MutationStamp() const { return stamp_; }
  std::shared_ptr<const void> FreshCachedView() const {
    return cached_view_stamp_ == stamp_ ? cached_view_ : nullptr;
  }
  bool HasCachedView() const { return cached_view_ != nullptr; }
  std::shared_ptr<const void> StaleCachedView() const { return cached_view_; }
  uint64_t CachedViewStamp() const { return cached_view_stamp_; }
  void SetCachedView(std::shared_ptr<const void> view) const {
    cached_view_ = std::move(view);
    cached_view_stamp_ = stamp_;
  }

  // Replayable batch ops (normalized u <= v); see DirectedGraph.
  const DeltaJournal& delta_journal() const { return journal_; }
  void TrimDeltaJournal(uint64_t stamp) const { journal_.TrimThrough(stamp); }

 private:
  static bool SortedInsert(std::vector<NodeId>& vec, NodeId v);
  static bool SortedErase(std::vector<NodeId>& vec, NodeId v);

  // Inserts the node without bumping the stamp; see DirectedGraph.
  bool EnsureNode(NodeId id);

  void BumpStamp() {
    ++stamp_;
    journal_.Invalidate();
  }

  NodeTable nodes_;
  int64_t num_edges_ = 0;
  NodeId next_node_id_ = 0;
  // Starts at 1 so a default-constructed cache (stamp 0) is never fresh.
  uint64_t stamp_ = 1;
  mutable DeltaJournal journal_;
  mutable std::shared_ptr<const void> cached_view_;
  mutable uint64_t cached_view_stamp_ = 0;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_UNDIRECTED_GRAPH_H_
