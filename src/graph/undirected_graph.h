// UndirectedGraph: hash-table-of-nodes representation with one sorted
// adjacency vector per node. Each edge {u, v} appears in both endpoints'
// vectors (a self-loop appears once). Used for triangle counting,
// clustering coefficients, k-core and community algorithms.
//
// Concurrency follows DirectedGraph (DESIGN.md §12): mutators serialize
// behind an exclusive structure lock, the snapshot single flight builds
// under the same lock in shared mode, and unlocked structural reads are
// only safe against other readers — concurrent analytics must pin a
// snapshot via AlgoView::Of().
#ifndef RINGO_GRAPH_UNDIRECTED_GRAPH_H_
#define RINGO_GRAPH_UNDIRECTED_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "graph/delta_journal.h"
#include "graph/edge_batch.h"
#include "graph/graph_defs.h"
#include "graph/snapshot_cache.h"
#include "storage/flat_hash_map.h"

namespace ringo {

class DirectedGraph;

class UndirectedGraph {
 public:
  struct NodeData {
    std::vector<NodeId> nbrs;  // Sorted ascending.
  };
  using NodeTable = FlatHashMap<NodeId, NodeData>;

  UndirectedGraph() = default;

  // Same contract as DirectedGraph: structural state transfers, sync
  // objects and the snapshot cache start fresh; copy quiescent graphs.
  UndirectedGraph(const UndirectedGraph& other);
  UndirectedGraph& operator=(const UndirectedGraph& other);
  UndirectedGraph(UndirectedGraph&& other) noexcept;
  UndirectedGraph& operator=(UndirectedGraph&& other) noexcept;

  void ReserveNodes(int64_t n) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    nodes_.Reserve(n);
  }

  bool AddNode(NodeId id);
  NodeId AddNode();

  // Adds the undirected edge {src, dst}, creating missing endpoints.
  // Returns true if new.
  bool AddEdge(NodeId src, NodeId dst);
  bool DelEdge(NodeId src, NodeId dst);

  // Batched counterpart of AddEdge/DelEdge: inserts first, then deletes.
  // Edge pairs are unordered here — (u, v) and (v, u) name the same edge
  // and are normalized before dedup. See DirectedGraph::ApplyEdgeBatch and
  // DESIGN.md §11 for the full contract (single stamp bump, journaled net
  // ops + created node ids, parallel per-node merges).
  EdgeBatchStats ApplyEdgeBatch(std::vector<Edge> inserts,
                                std::vector<Edge> deletes);

  bool DelNode(NodeId id);

  bool HasNode(NodeId id) const { return nodes_.Contains(id); }
  bool HasEdge(NodeId src, NodeId dst) const;

  int64_t NumNodes() const { return nodes_.size(); }
  // Each undirected edge counted once.
  int64_t NumEdges() const { return num_edges_; }

  int64_t Degree(NodeId id) const;
  const NodeData* GetNode(NodeId id) const { return nodes_.Find(id); }

  std::vector<NodeId> NodeIds() const { return nodes_.Keys(); }
  std::vector<NodeId> SortedNodeIds() const;

  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    nodes_.ForEach(fn);
  }

  // Applies fn(u, v) once per undirected edge with u <= v.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    nodes_.ForEach([&](NodeId u, const NodeData& nd) {
      for (NodeId v : nd.nbrs) {
        if (u <= v) fn(u, v);
      }
    });
  }

  const NodeTable& node_table() const { return nodes_; }
  NodeTable& mutable_node_table() {
    {
      std::unique_lock<std::shared_mutex> lk(structure_mu_);
      BumpStamp();
    }
    return nodes_;
  }
  void BumpEdgeCount(int64_t count) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    num_edges_ += count;
    BumpStamp();
  }
  void NoteMaxNodeId(NodeId id) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    next_node_id_ = std::max(next_node_id_, id + 1);
  }

  int64_t MemoryUsageBytes() const;
  bool SameStructure(const UndirectedGraph& other) const;

  // Mutation stamp + cached analytics view; see DirectedGraph and
  // DESIGN.md §9, §12 for the contract.
  uint64_t MutationStamp() const {
    return stamp_.load(std::memory_order_acquire);
  }
  SnapshotCache& view_cache() const { return cache_; }
  std::shared_lock<std::shared_mutex> ReadLockStructure() const {
    return std::shared_lock<std::shared_mutex>(structure_mu_);
  }

  // Replayable batch ops (normalized u <= v); see DirectedGraph.
  const DeltaJournal& delta_journal() const { return journal_; }
  void TrimDeltaJournal(uint64_t stamp) const { journal_.TrimThrough(stamp); }

 private:
  static bool SortedInsert(std::vector<NodeId>& vec, NodeId v);
  static bool SortedErase(std::vector<NodeId>& vec, NodeId v);

  // Inserts the node without bumping the stamp; see DirectedGraph. Caller
  // holds the exclusive structure lock.
  bool EnsureNode(NodeId id);
  bool AddNodeLocked(NodeId id);

  void BumpStamp() {
    stamp_.fetch_add(1, std::memory_order_release);
    journal_.Invalidate();
  }

  NodeTable nodes_;
  int64_t num_edges_ = 0;
  NodeId next_node_id_ = 0;
  // Starts at 1 so a default-constructed cache (stamp 0) is never fresh.
  std::atomic<uint64_t> stamp_{1};
  mutable DeltaJournal journal_;
  // Writers exclusive, snapshot builds shared (DESIGN.md §12).
  mutable std::shared_mutex structure_mu_;
  mutable SnapshotCache cache_;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_UNDIRECTED_GRAPH_H_
