// DirectedGraph: the Ringo in-memory graph representation (§2.2).
//
// The graph is a hash table of nodes; every node keeps two *sorted*
// adjacency vectors (in-neighbors and out-neighbors). This balances the
// paper's two opposing requirements:
//   * fast neighborhood access — adjacency is contiguous and sorted, so
//     membership tests are O(log deg) and intersections (triangles) are
//     linear merges;
//   * dynamic updates — deleting an edge costs O(deg), not O(|E|) as in
//     CSR (see graph/csr_graph.h for that baseline).
//
// Space is comparable to CSR: 2 vectors per node + one hash slot.
//
// Semantics: simple directed graph. Self-loops are allowed; parallel
// (duplicate) edges are not.
//
// Concurrency (DESIGN.md §12): mutating entry points serialize behind an
// internal structure lock (exclusive), and the cached-snapshot single
// flight in algo/algo_view.* builds while holding the same lock in shared
// mode — so any number of query threads can pin consistent snapshots via
// AlgoView::Of() while one writer streams mutations. Direct structural
// *reads* (GetNode, HasEdge, ForEachNode, ...) take no lock: they are safe
// against each other but NOT against a concurrent writer; concurrent
// analytics must go through a pinned snapshot, which is immutable.
// mutable_node_table() splicing likewise requires external quiescence.
#ifndef RINGO_GRAPH_DIRECTED_GRAPH_H_
#define RINGO_GRAPH_DIRECTED_GRAPH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "graph/delta_journal.h"
#include "graph/edge_batch.h"
#include "graph/graph_defs.h"
#include "graph/snapshot_cache.h"
#include "storage/flat_hash_map.h"

namespace ringo {

class DirectedGraph {
 public:
  struct NodeData {
    std::vector<NodeId> in;   // Sorted ascending.
    std::vector<NodeId> out;  // Sorted ascending.
  };
  using NodeTable = FlatHashMap<NodeId, NodeData>;

  DirectedGraph() = default;

  // Copy/move transfer the structural state (nodes, edge count, stamp,
  // journal) but not the synchronization objects or the cached snapshot —
  // the copy starts with a cold cache and fresh locks. The source is
  // locked for the duration, but copying a graph that is concurrently
  // *written* is still a logical race; copy quiescent graphs.
  DirectedGraph(const DirectedGraph& other);
  DirectedGraph& operator=(const DirectedGraph& other);
  DirectedGraph(DirectedGraph&& other) noexcept;
  DirectedGraph& operator=(DirectedGraph&& other) noexcept;

  // Pre-sizes the node hash table for `n` nodes.
  void ReserveNodes(int64_t n) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    nodes_.Reserve(n);
  }

  // Adds a node with the given id; returns false if it already exists.
  bool AddNode(NodeId id);

  // Adds a fresh node with an unused id and returns it.
  NodeId AddNode();

  // Adds the edge src→dst, creating missing endpoints. Returns true if the
  // edge was new, false if it already existed. Bumps the mutation stamp
  // exactly once per effective mutation (a no-op never bumps).
  bool AddEdge(NodeId src, NodeId dst);

  // Removes a single edge; O(deg). Returns false if absent.
  bool DelEdge(NodeId src, NodeId dst);

  // Applies a whole batch of edge mutations at once: inserts first, then
  // deletes (a pair in both lists therefore ends up absent; if it also
  // pre-existed the batch nets to a delete, otherwise to nothing). Both
  // lists are radix-sorted and deduped, missing insert endpoints are
  // created (as AddEdge would), and each touched node's adjacency vector is
  // rewritten with one linear merge — touched nodes update in parallel.
  // Bumps the mutation stamp at most once, and journals the net ops (plus
  // any created node ids, which always land above the id watermark) so the
  // cached AlgoView can be patched instead of rebuilt (DESIGN.md §11).
  EdgeBatchStats ApplyEdgeBatch(std::vector<Edge> inserts,
                                std::vector<Edge> deletes);

  // Removes a node and all incident edges. Returns false if absent.
  bool DelNode(NodeId id);

  bool HasNode(NodeId id) const { return nodes_.Contains(id); }
  bool HasEdge(NodeId src, NodeId dst) const;

  int64_t NumNodes() const { return nodes_.size(); }
  int64_t NumEdges() const { return num_edges_; }

  // Degree queries; 0 for missing nodes.
  int64_t OutDegree(NodeId id) const;
  int64_t InDegree(NodeId id) const;

  // Neighborhood access; nullptr for missing nodes. Vectors are sorted.
  const NodeData* GetNode(NodeId id) const { return nodes_.Find(id); }

  // All node ids, unsorted (hash order). See SortedNodeIds for stable order.
  std::vector<NodeId> NodeIds() const { return nodes_.Keys(); }
  std::vector<NodeId> SortedNodeIds() const;

  // Applies fn(NodeId, const NodeData&) to every node.
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    nodes_.ForEach(fn);
  }

  // Applies fn(src, dst) to every directed edge (grouped by source, each
  // source's destinations in ascending order).
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    nodes_.ForEach([&](NodeId src, const NodeData& nd) {
      for (NodeId dst : nd.out) fn(src, dst);
    });
  }

  // Direct slot access to the node table for OpenMP partitioned loops.
  // The mutable accessor bumps the mutation stamp because callers use it to
  // splice structure in directly (conversion, IO loaders); the splicing
  // itself happens outside any lock, so it requires quiescence.
  const NodeTable& node_table() const { return nodes_; }
  NodeTable& mutable_node_table() {
    {
      std::unique_lock<std::shared_mutex> lk(structure_mu_);
      BumpStamp();
    }
    return nodes_;
  }

  // Registers `count` edges added externally via mutable_node_table() (the
  // sort-first conversion fills adjacency vectors directly, §2.4).
  void BumpEdgeCount(int64_t count) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    num_edges_ += count;
    BumpStamp();
  }
  void NoteMaxNodeId(NodeId id) {
    std::unique_lock<std::shared_mutex> lk(structure_mu_);
    next_node_id_ = std::max(next_node_id_, id + 1);
  }

  // Structure-only heap usage in bytes (node table + adjacency vectors).
  int64_t MemoryUsageBytes() const;

  // Structural equality: same node set and same edge set.
  bool SameStructure(const DirectedGraph& other) const;

  // --------------------------------------------------------------------
  // Mutation stamp + cached analytics view (DESIGN.md §9, §12).
  //
  // Every structural mutation bumps the stamp under the exclusive
  // structure lock; read-optimized snapshots (algo/algo_view.h) are cached
  // in `view_cache()` keyed by the stamp value at build time. The snapshot
  // single flight holds ReadLockStructure() (shared) while it reads the
  // structure, journal, and stamp, so writers and snapshot builds exclude
  // each other and a build observes one consistent stamp.
  uint64_t MutationStamp() const {
    return stamp_.load(std::memory_order_acquire);
  }

  // The single-flight snapshot cache slot (type-erased; the algo layer
  // stores the AlgoView here).
  SnapshotCache& view_cache() const { return cache_; }

  // Shared (reader) hold on the structure lock for the duration of a
  // snapshot build: blocks writers, admits other builders' reads.
  std::shared_lock<std::shared_mutex> ReadLockStructure() const {
    return std::shared_lock<std::shared_mutex>(structure_mu_);
  }

  // Effective edge ops of recent ApplyEdgeBatch calls, replayable onto a
  // cached snapshot (DESIGN.md §11). Callers must hold ReadLockStructure()
  // (the snapshot single flight does). Trimming is const because it only
  // discards batches already folded into the published snapshot.
  const DeltaJournal& delta_journal() const { return journal_; }
  void TrimDeltaJournal(uint64_t stamp) const { journal_.TrimThrough(stamp); }

 private:
  // Inserts v into sorted vec if absent; returns false if present.
  static bool SortedInsert(std::vector<NodeId>& vec, NodeId v);
  static bool SortedErase(std::vector<NodeId>& vec, NodeId v);
  static bool SortedContains(const std::vector<NodeId>& vec, NodeId v);

  // Inserts the node without bumping the stamp (mutation entry points bump
  // exactly once after they know the mutation was effective). Caller holds
  // the exclusive structure lock.
  bool EnsureNode(NodeId id);
  bool AddNodeLocked(NodeId id);

  // Every non-batch structural mutation goes through here (exclusive lock
  // held): one stamp bump and a journal invalidation (the mutation is not
  // replayable, so a cached snapshot can only be refreshed by a rebuild).
  void BumpStamp() {
    stamp_.fetch_add(1, std::memory_order_release);
    journal_.Invalidate();
  }

  NodeTable nodes_;
  int64_t num_edges_ = 0;
  NodeId next_node_id_ = 0;
  // Starts at 1 so a default-constructed cache (stamp 0) is never fresh.
  std::atomic<uint64_t> stamp_{1};
  mutable DeltaJournal journal_;
  // Writers exclusive, snapshot builds shared (DESIGN.md §12).
  mutable std::shared_mutex structure_mu_;
  mutable SnapshotCache cache_;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_DIRECTED_GRAPH_H_
