// Graph persistence: the SNAP-style text edge-list format the benchmark
// datasets ship in (one "src<TAB>dst" line per edge, '#' comments), plus a
// compact binary snapshot format for fast reloads in interactive sessions
// (§4.2's demo pre-loads datasets this way).
#ifndef RINGO_GRAPH_GRAPH_IO_H_
#define RINGO_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/directed_graph.h"
#include "util/result.h"

namespace ringo {

// Text edge list, SNAP-compatible with one extension. Format:
//   * edge lines "src dst" tokenized on any run of spaces/tabs;
//   * lines starting with '#' and blank lines are comments — except
//     "# Node: <id>" marker lines, which carry isolated (degree-0) nodes
//     so the text round-trip preserves them. SaveEdgeList writes one
//     marker per isolated node; LoadEdgeList parses them back and still
//     accepts files without the section (plain SNAP downloads).
// LoadEdgeList returns Status::Corruption with the 1-based line number
// for malformed edge or marker lines (wrong field count, unparsable ids)
// instead of skipping them.
Status SaveEdgeList(const DirectedGraph& g, const std::string& path);
Result<DirectedGraph> LoadEdgeList(const std::string& path);

// Binary snapshot: magic + node/edge counts + per-node id and sorted
// out-adjacency. Restores the exact structure including isolated nodes.
// The format is little-endian and versioned; loading rejects foreign or
// truncated files with IOError.
Status SaveGraphBinary(const DirectedGraph& g, const std::string& path);
Result<DirectedGraph> LoadGraphBinary(const std::string& path);

}  // namespace ringo

#endif  // RINGO_GRAPH_GRAPH_IO_H_
