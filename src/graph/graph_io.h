// Graph persistence: the SNAP-style text edge-list format the benchmark
// datasets ship in (one "src<TAB>dst" line per edge, '#' comments), plus a
// compact binary snapshot format for fast reloads in interactive sessions
// (§4.2's demo pre-loads datasets this way).
#ifndef RINGO_GRAPH_GRAPH_IO_H_
#define RINGO_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/directed_graph.h"
#include "util/result.h"

namespace ringo {

// Text edge list. Lines starting with '#' and blank lines are skipped;
// isolated nodes are not representable (matching the SNAP dataset files).
Status SaveEdgeList(const DirectedGraph& g, const std::string& path);
Result<DirectedGraph> LoadEdgeList(const std::string& path);

// Binary snapshot: magic + node/edge counts + per-node id and sorted
// out-adjacency. Restores the exact structure including isolated nodes.
// The format is little-endian and versioned; loading rejects foreign or
// truncated files with IOError.
Status SaveGraphBinary(const DirectedGraph& g, const std::string& path);
Result<DirectedGraph> LoadGraphBinary(const std::string& path);

}  // namespace ringo

#endif  // RINGO_GRAPH_GRAPH_IO_H_
