// Shared machinery for batched edge mutations (DESIGN.md §11).
//
// ApplyEdgeBatch on both graph classes follows the same plan:
//   1. radix-sort and dedup the insert and delete lists (§7 machinery);
//   2. resolve each mentioned pair against the current adjacency into a
//      *net* op stream ("inserts first, then deletes" semantics — a pair in
//      both lists cancels unless the edge pre-existed, in which case it
//      nets to a delete);
//   3. group the net ops by adjacency-owning endpoint and rewrite each
//      touched node's sorted vector with ONE linear merge instead of k
//      repeated O(deg) sorted inserts — groups are disjoint, so the merges
//      run in parallel.
// The helpers here are the pieces both graphs share; the per-class glue
// (in/out vs. single nbrs vector, endpoint normalization) lives in the
// graph .cc files.
#ifndef RINGO_GRAPH_EDGE_BATCH_H_
#define RINGO_GRAPH_EDGE_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/delta_journal.h"
#include "graph/graph_defs.h"
#include "util/radix_sort.h"

namespace ringo {

// What a batch actually changed. `inserted`/`deleted` count net effective
// edge mutations (an edge inserted and deleted inside one batch counts as
// neither); `new_nodes` counts endpoints created for insert pairs, which
// happens even when the edge itself already existed (matching AddEdge).
struct EdgeBatchStats {
  int64_t inserted = 0;
  int64_t deleted = 0;
  int64_t new_nodes = 0;

  bool Changed() const { return inserted + deleted + new_nodes > 0; }
};

namespace edgebatch {

// Sorts by (first, second) with the radix kernel and drops duplicates.
// Already-sorted input (producers that maintain sorted batches, and the
// steady state of replayed streams) skips the sort for one linear check.
inline void SortDedup(std::vector<Edge>& edges) {
  if (!std::is_sorted(edges.begin(), edges.end())) {
    RadixSortI64Pairs(edges.data(), static_cast<int64_t>(edges.size()));
  }
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

// Net mutations are EdgeOp records (graph/delta_journal.h). When applying
// to adjacency, `u` is the endpoint whose sorted vector the op lands in and
// `v` the neighbor inserted/erased.

// Sorts ops by (u, v); ops are net (at most one per pair) except inside
// NetOps' multi-batch collapse, where same-pair ops are summed — so no
// tiebreak is needed either way. Several op streams are sorted by
// construction (resolved batches, single-batch journal replays, monotone
// dense translations), so a linear pre-check skips the sort for them.
// Otherwise packs into the two-word radix records from §7; with pass
// skipping the distribution sort beats a comparison sort even for
// thousand-op batches (node ids are narrow).
inline void SortOps(std::vector<EdgeOp>& ops) {
  const auto by_uv = [](const EdgeOp& a, const EdgeOp& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  if (std::is_sorted(ops.begin(), ops.end(), by_uv)) return;
  const int64_t n = static_cast<int64_t>(ops.size());
  std::vector<KeyRow2> recs(ops.size());
  for (int64_t i = 0; i < n; ++i) {
    recs[i] = {radix::Int64Key(ops[i].u), radix::Int64Key(ops[i].v),
               ops[i].op};
  }
  RadixSortKeyRows2(recs.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    ops[i] = {static_cast<NodeId>(recs[i].hi ^ (uint64_t{1} << 63)),
              static_cast<NodeId>(recs[i].lo ^ (uint64_t{1} << 63)),
              static_cast<int32_t>(recs[i].row)};
  }
}

// Sorts an op list that is the transpose of a (u, v)-sorted stream (every
// record's endpoints swapped, e.g. the in-direction view of out-sorted
// ops): within equal u the v's are already ascending, so one stable
// counting pass by u suffices. Dense owner ids — the common case for
// renumbered snapshots and generated graphs — take the O(range + n)
// counting path; sparse ranges fall back to the radix sort.
inline void SortTransposedOps(std::vector<EdgeOp>& ops) {
  const int64_t n = static_cast<int64_t>(ops.size());
  if (n <= 1) return;
  NodeId lo = ops[0].u, hi = ops[0].u;
  bool sorted = true;
  for (int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, ops[i].u);
    hi = std::max(hi, ops[i].u);
    if (i > 0 && (ops[i - 1].u > ops[i].u ||
                  (ops[i - 1].u == ops[i].u && ops[i - 1].v > ops[i].v))) {
      sorted = false;
    }
  }
  if (sorted) return;
  const int64_t range = hi - lo + 1;
  if (range > std::max<int64_t>(int64_t{1} << 16, 8 * n)) {
    SortOps(ops);
    return;
  }
  std::vector<int32_t> starts(range + 1, 0);
  for (int64_t i = 0; i < n; ++i) ++starts[ops[i].u - lo + 1];
  for (int64_t r = 0; r < range; ++r) starts[r + 1] += starts[r];
  static thread_local std::vector<EdgeOp> scratch;
  scratch.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    scratch[starts[ops[i].u - lo]++] = ops[i];
  }
  std::copy(scratch.begin(), scratch.end(), ops.begin());
}

// Rewrites a sorted adjacency vector by merging in the net ops
// [begin, end) for this node (sorted ascending by v). Inserts are
// guaranteed absent from `vec` and deletes guaranteed present — the caller
// resolved the batch against the current adjacency — so the output size is
// exact and the merge is a single forward pass.
// The merge goes through a thread-local scratch buffer (batches touch
// thousands of nodes; a per-node allocation here dominates the merge
// itself) and is copied back with assign(), which reuses the vector's
// capacity — in steady state the whole apply loop runs allocation-free.
inline void MergeApplyRun(std::vector<NodeId>& vec, const EdgeOp* begin,
                          const EdgeOp* end) {
  static thread_local std::vector<NodeId> scratch;
  scratch.clear();
  size_t i = 0;
  const EdgeOp* o = begin;
  while (i < vec.size() || o != end) {
    if (o == end) {
      scratch.push_back(vec[i++]);
    } else if (i == vec.size()) {
      // Remaining ops must all be inserts past the tail.
      scratch.push_back(o->v);
      ++o;
    } else if (vec[i] < o->v) {
      scratch.push_back(vec[i++]);
    } else if (vec[i] == o->v) {
      // A delete consumes the element; an equal insert cannot happen.
      ++i;
      ++o;
    } else {
      scratch.push_back(o->v);
      ++o;
    }
  }
  vec.assign(scratch.begin(), scratch.end());
}

// Group boundaries of a (u, v)-sorted op list: offsets[k] is the first op
// of group k, groups keyed by `u`. Returns group-count + 1 entries.
inline std::vector<int64_t> GroupByNode(const std::vector<EdgeOp>& ops) {
  std::vector<int64_t> offsets;
  const int64_t n = static_cast<int64_t>(ops.size());
  for (int64_t i = 0; i < n; ++i) {
    if (i == 0 || ops[i].u != ops[i - 1].u) offsets.push_back(i);
  }
  offsets.push_back(n);
  return offsets;
}

}  // namespace edgebatch
}  // namespace ringo

#endif  // RINGO_GRAPH_EDGE_BATCH_H_
