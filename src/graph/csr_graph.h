// CsrGraph: Compressed Sparse Row representation — the static baseline the
// paper contrasts with its dynamic hash-table-of-nodes design (§2.2). Two
// flat arrays (offsets indexed by dense node index, neighbor array sorted
// within each node) give the best possible traversal locality, but a single
// edge deletion costs O(|E|) because the edge array must be compacted.
//
// Used by bench_ablation_representation to reproduce that trade-off, and as
// an alternative substrate for read-only analytics.
#ifndef RINGO_GRAPH_CSR_GRAPH_H_
#define RINGO_GRAPH_CSR_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph_defs.h"
#include "storage/flat_hash_map.h"

namespace ringo {

class DirectedGraph;

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds from an arbitrary directed edge list. Node ids may be sparse;
  // they are mapped to dense indices [0, n). Duplicate edges are collapsed.
  static CsrGraph FromEdges(std::vector<Edge> edges);

  // Builds from a Ringo dynamic graph (preserves the same edge set).
  static CsrGraph FromGraph(const DirectedGraph& g);

  int64_t NumNodes() const { return static_cast<int64_t>(ids_.size()); }
  int64_t NumEdges() const { return static_cast<int64_t>(out_nbrs_.size()); }

  // Dense index of a node id, or -1 if absent.
  int64_t IndexOf(NodeId id) const {
    const int64_t* idx = index_.Find(id);
    return idx == nullptr ? -1 : *idx;
  }
  NodeId IdOf(int64_t index) const { return ids_[index]; }

  // Out-/in-neighborhoods by dense index; sorted by dense index.
  std::span<const int64_t> OutNeighbors(int64_t index) const {
    return {out_nbrs_.data() + out_offsets_[index],
            static_cast<size_t>(out_offsets_[index + 1] - out_offsets_[index])};
  }
  std::span<const int64_t> InNeighbors(int64_t index) const {
    return {in_nbrs_.data() + in_offsets_[index],
            static_cast<size_t>(in_offsets_[index + 1] - in_offsets_[index])};
  }

  int64_t OutDegree(int64_t index) const {
    return out_offsets_[index + 1] - out_offsets_[index];
  }
  int64_t InDegree(int64_t index) const {
    return in_offsets_[index + 1] - in_offsets_[index];
  }

  bool HasEdge(NodeId src, NodeId dst) const;

  // Deletes one edge by rebuilding/compacting the flat arrays — O(|E|), the
  // cost the paper's dynamic representation avoids.
  bool DelEdge(NodeId src, NodeId dst);

  int64_t MemoryUsageBytes() const;

 private:
  std::vector<NodeId> ids_;            // dense index -> node id (ascending)
  FlatHashMap<NodeId, int64_t> index_;  // node id -> dense index
  std::vector<int64_t> out_offsets_;   // n + 1
  std::vector<int64_t> out_nbrs_;      // dense indices
  std::vector<int64_t> in_offsets_;    // n + 1
  std::vector<int64_t> in_nbrs_;       // dense indices
};

}  // namespace ringo

#endif  // RINGO_GRAPH_CSR_GRAPH_H_
