#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <vector>

#include "util/string_util.h"

namespace ringo {

namespace {

constexpr char kMagic[8] = {'R', 'N', 'G', 'O', 'G', 'R', 'F', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveEdgeList(const DirectedGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << "# Directed graph saved by Ringo\n";
  out << "# Nodes: " << g.NumNodes() << " Edges: " << g.NumEdges() << "\n";
  // Isolated (degree-0) nodes appear on no edge line, so the plain
  // edge-list format would drop them on reload. They are written as
  // "# Node: <id>" marker lines: Ringo's loader parses them back while
  // SNAP-style readers skip them as comments. Nodes with at least one
  // incident edge are recovered from the edge lines themselves.
  for (NodeId u : g.SortedNodeIds()) {
    const auto* nd = g.GetNode(u);
    if (nd->out.empty() && nd->in.empty()) {
      out << "# Node: " << u << '\n';
    }
  }
  out << "# SrcNId\tDstNId\n";
  for (NodeId u : g.SortedNodeIds()) {
    for (NodeId v : g.GetNode(u)->out) {
      out << u << '\t' << v << '\n';
    }
  }
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

Result<DirectedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  DirectedGraph g;
  std::string line;
  int64_t lineno = 0;
  constexpr std::string_view kNodeMarker = "# Node:";
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# Node: <id>" markers carry isolated nodes; other '#' lines are
      // comments (backward compatible with files that lack the section).
      if (StartsWith(line, kNodeMarker)) {
        const auto fields =
            SplitWhitespace(std::string_view(line).substr(kNodeMarker.size()));
        if (fields.size() != 1) {
          return Status::Corruption("line " + std::to_string(lineno) +
                                    ": expected '# Node: <id>'");
        }
        const auto id = ParseInt64(fields[0]);
        if (!id.ok()) {
          return Status::Corruption("line " + std::to_string(lineno) +
                                    ": bad node id '" + std::string(fields[0]) +
                                    "'");
        }
        g.AddNode(id.value());
      }
      continue;
    }
    // Edge lines tokenize on any run of spaces/tabs, like SNAP datasets.
    const auto fields = SplitWhitespace(line);
    if (fields.size() != 2) {
      return Status::Corruption("line " + std::to_string(lineno) +
                                ": expected 'src dst', got " +
                                std::to_string(fields.size()) + " fields");
    }
    const auto src = ParseInt64(fields[0]);
    const auto dst = ParseInt64(fields[1]);
    if (!src.ok() || !dst.ok()) {
      return Status::Corruption("line " + std::to_string(lineno) +
                                ": cannot parse edge '" + line + "'");
    }
    g.AddEdge(src.value(), dst.value());
  }
  return g;
}

Status SaveGraphBinary(const DirectedGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, g.NumNodes());
  WritePod(out, g.NumEdges());
  for (NodeId u : g.SortedNodeIds()) {
    const auto* nd = g.GetNode(u);
    WritePod(out, u);
    WritePod(out, static_cast<int64_t>(nd->out.size()));
    out.write(reinterpret_cast<const char*>(nd->out.data()),
              static_cast<std::streamsize>(nd->out.size() * sizeof(NodeId)));
  }
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

Result<DirectedGraph> LoadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kMagic)) {
    return Status::IOError("'" + path + "' is not a Ringo binary graph");
  }
  int64_t num_nodes = 0, num_edges = 0;
  if (!ReadPod(in, &num_nodes) || !ReadPod(in, &num_edges) || num_nodes < 0 ||
      num_edges < 0) {
    return Status::IOError("corrupt header in '" + path + "'");
  }

  DirectedGraph g;
  g.ReserveNodes(num_nodes);
  // First pass: create nodes and their out-vectors.
  std::vector<std::pair<NodeId, std::vector<NodeId>>> nodes;
  nodes.reserve(num_nodes);
  int64_t edges_seen = 0;
  for (int64_t i = 0; i < num_nodes; ++i) {
    NodeId id = 0;
    int64_t deg = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &deg) || deg < 0 ||
        deg > num_edges) {
      return Status::IOError("corrupt node block in '" + path + "'");
    }
    std::vector<NodeId> out(deg);
    in.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(deg * sizeof(NodeId)));
    if (!in) {
      return Status::IOError("truncated adjacency in '" + path + "'");
    }
    if (!std::is_sorted(out.begin(), out.end())) {
      return Status::IOError("unsorted adjacency in '" + path + "'");
    }
    edges_seen += deg;
    if (!g.AddNode(id)) {
      return Status::IOError("duplicate node id in '" + path + "'");
    }
    nodes.emplace_back(id, std::move(out));
  }
  if (edges_seen != num_edges) {
    return Status::IOError("edge count mismatch in '" + path + "'");
  }

  // Second pass: install out-vectors and build in-vectors.
  auto& table = g.mutable_node_table();
  for (auto& [id, out] : nodes) {
    for (NodeId v : out) {
      DirectedGraph::NodeData* vd = table.Find(v);
      if (vd == nullptr) {
        return Status::IOError("edge to unknown node in '" + path + "'");
      }
      vd->in.push_back(id);
    }
  }
  for (auto& [id, out] : nodes) {
    DirectedGraph::NodeData* nd = table.Find(id);
    nd->out = std::move(out);
    std::sort(nd->in.begin(), nd->in.end());
  }
  g.BumpEdgeCount(num_edges);
  return g;
}

}  // namespace ringo
