#include "graph/directed_graph.h"

#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

// Journal cap: replaying a delta comparable to the graph itself is slower
// than one rebuild, so the journal gives up well before that.
int64_t JournalCap(int64_t num_edges) {
  return std::max<int64_t>(4096, num_edges / 2);
}

}  // namespace

DirectedGraph::DirectedGraph(const DirectedGraph& other) {
  std::shared_lock<std::shared_mutex> lk(other.structure_mu_);
  nodes_ = other.nodes_;
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = other.journal_;
}

DirectedGraph& DirectedGraph::operator=(const DirectedGraph& other) {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> lk_this(structure_mu_, std::defer_lock);
  std::shared_lock<std::shared_mutex> lk_other(other.structure_mu_,
                                               std::defer_lock);
  std::lock(lk_this, lk_other);
  nodes_ = other.nodes_;
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = other.journal_;
  return *this;
}

DirectedGraph::DirectedGraph(DirectedGraph&& other) noexcept {
  std::unique_lock<std::shared_mutex> lk(other.structure_mu_);
  nodes_ = std::move(other.nodes_);
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = std::move(other.journal_);
  other.num_edges_ = 0;
  other.next_node_id_ = 0;
  other.journal_.Invalidate();
}

DirectedGraph& DirectedGraph::operator=(DirectedGraph&& other) noexcept {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> lk_this(structure_mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> lk_other(other.structure_mu_,
                                               std::defer_lock);
  std::lock(lk_this, lk_other);
  nodes_ = std::move(other.nodes_);
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = std::move(other.journal_);
  other.num_edges_ = 0;
  other.next_node_id_ = 0;
  other.journal_.Invalidate();
  return *this;
}

bool DirectedGraph::SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

bool DirectedGraph::SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool DirectedGraph::SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

bool DirectedGraph::EnsureNode(NodeId id) {
  const bool inserted = nodes_.Insert(id, NodeData{}).second;
  if (inserted) next_node_id_ = std::max(next_node_id_, id + 1);
  return inserted;
}

bool DirectedGraph::AddNodeLocked(NodeId id) {
  const bool inserted = EnsureNode(id);
  if (inserted) BumpStamp();
  return inserted;
}

bool DirectedGraph::AddNode(NodeId id) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  return AddNodeLocked(id);
}

NodeId DirectedGraph::AddNode() {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // The watermark is advanced by every insert path (EnsureNode), so this
  // probe is O(1) amortized; it only walks when ids were spliced in via
  // mutable_node_table() without NoteMaxNodeId.
  while (nodes_.Contains(next_node_id_)) ++next_node_id_;
  const NodeId id = next_node_id_;
  AddNodeLocked(id);
  return id;
}

bool DirectedGraph::AddEdge(NodeId src, NodeId dst) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // No stamp bumps here: if the edge already exists its endpoints do too,
  // so a failed insert below means nothing changed at all, and a
  // successful one bumps exactly once for nodes + edge together.
  EnsureNode(src);
  EnsureNode(dst);
  NodeData* s = nodes_.Find(src);
  if (!SortedInsert(s->out, dst)) return false;
  // Re-find dst because the EnsureNode calls above may have rehashed before
  // we took `s` — order matters: both EnsureNode calls precede both Finds.
  NodeData* d = nodes_.Find(dst);
  SortedInsert(d->in, src);
  ++num_edges_;
  BumpStamp();
  return true;
}

bool DirectedGraph::DelEdge(NodeId src, NodeId dst) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  NodeData* s = nodes_.Find(src);
  if (s == nullptr || !SortedErase(s->out, dst)) return false;
  NodeData* d = nodes_.Find(dst);
  SortedErase(d->in, src);
  --num_edges_;
  BumpStamp();
  return true;
}

bool DirectedGraph::DelNode(NodeId id) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  NodeData* nd = nodes_.Find(id);
  if (nd == nullptr) return false;
  // Detach from neighbors. Self-loop appears in both vectors; guard so the
  // edge count drops exactly once for it.
  int64_t removed = 0;
  for (NodeId dst : nd->out) {
    ++removed;
    if (dst == id) continue;
    SortedErase(nodes_.Find(dst)->in, id);
  }
  for (NodeId src : nd->in) {
    if (src == id) continue;  // Self-loop already counted via `out`.
    ++removed;
    SortedErase(nodes_.Find(src)->out, id);
  }
  num_edges_ -= removed;
  nodes_.Erase(id);
  BumpStamp();
  return true;
}

EdgeBatchStats DirectedGraph::ApplyEdgeBatch(std::vector<Edge> inserts,
                                             std::vector<Edge> deletes) {
  trace::Span span("Graph/ApplyEdgeBatch");
  span.AddAttr("inserts_raw", static_cast<int64_t>(inserts.size()));
  span.AddAttr("deletes_raw", static_cast<int64_t>(deletes.size()));
  EdgeBatchStats stats;
  {
    trace::Span s("Graph/ApplyEdgeBatch/sort_dedup");
    edgebatch::SortDedup(inserts);
    edgebatch::SortDedup(deletes);
  }

  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // Ids at or above this watermark did not exist before the batch, so
  // creating them never renumbers existing snapshot rows — the batch stays
  // journal-replayable (DESIGN.md §11).
  const NodeId pre_watermark = next_node_id_;
  std::vector<NodeId> created;

  std::vector<EdgeOp> ops;
  {
    trace::Span s("Graph/ApplyEdgeBatch/resolve");
    // Endpoints of every insert pair exist afterwards, like repeated AddEdge
    // (even for pairs that cancel against a delete in the same batch — the
    // delete removes the edge, not the nodes). One EnsureNode per distinct
    // endpoint: firsts repeat consecutively in the sorted list, seconds are
    // deduped through one radix pass.
    {
      bool have_last = false;
      NodeId last = 0;
      std::vector<NodeId> seconds;
      seconds.reserve(inserts.size());
      for (const Edge& e : inserts) {
        if (!have_last || e.first != last) {
          if (EnsureNode(e.first)) created.push_back(e.first);
          last = e.first;
          have_last = true;
        }
        seconds.push_back(e.second);
      }
      RadixSortI64(seconds);
      seconds.erase(std::unique(seconds.begin(), seconds.end()),
                    seconds.end());
      for (const NodeId v : seconds) {
        if (EnsureNode(v)) created.push_back(v);
      }
      stats.new_nodes = static_cast<int64_t>(created.size());
    }

    // Resolve against the pre-batch adjacency into net ops ("inserts first,
    // then deletes"): a pair in deletes nets to a delete iff the edge
    // pre-existed; a pair only in inserts nets to an insert iff it did not.
    // One merged walk over the two sorted lists emits the ops already in
    // (u, v) order — the out-direction grouping below then skips its sort —
    // and runs of pairs sharing a source reuse one adjacency lookup (no
    // node mutations happen past EnsureNode, so the pointer is stable).
    ops.reserve(inserts.size() + deletes.size());
    NodeId cached_u = -1;
    const NodeData* cached_nd = nullptr;
    const auto has = [&](const Edge& e) {
      if (e.first != cached_u) {
        cached_u = e.first;
        cached_nd = nodes_.Find(e.first);
      }
      return cached_nd != nullptr && SortedContains(cached_nd->out, e.second);
    };
    size_t ii = 0, di = 0;
    while (ii < inserts.size() || di < deletes.size()) {
      const bool ins_next =
          di == deletes.size() ||
          (ii < inserts.size() && inserts[ii] < deletes[di]);
      if (ins_next) {
        if (!has(inserts[ii])) ops.push_back(
            {inserts[ii].first, inserts[ii].second, +1});
        ++ii;
      } else {
        if (ii < inserts.size() && inserts[ii] == deletes[di]) {
          ++ii;  // Delete wins over the same pair's insert.
        }
        if (has(deletes[di])) ops.push_back(
            {deletes[di].first, deletes[di].second, -1});
        ++di;
      }
    }
    for (const EdgeOp& o : ops) (o.op > 0 ? stats.inserted : stats.deleted)++;
  }

  if (!stats.Changed()) return stats;  // True no-op: the stamp stays put.

  if (!ops.empty()) {
    trace::Span apply_span("Graph/ApplyEdgeBatch/apply");
    // Out-direction: ops are keyed (src, dst) already; sort and group by
    // source, then rewrite each source's vector with one merge. Groups are
    // disjoint nodes, so the merges run in parallel (no rehash can happen:
    // all node inserts are done).
    edgebatch::SortOps(ops);
    {
      const std::vector<int64_t> groups = edgebatch::GroupByNode(ops);
      const int64_t ngroups = static_cast<int64_t>(groups.size()) - 1;
      ParallelForDynamic(0, ngroups, [&](int64_t k) {
        NodeData* nd = nodes_.Find(ops[groups[k]].u);
        edgebatch::MergeApplyRun(nd->out, ops.data() + groups[k],
                                 ops.data() + groups[k + 1]);
      });
    }
    // In-direction: the same net ops keyed (dst, src) — a transpose of the
    // (src, dst)-sorted list, so the counting sort applies.
    {
      std::vector<EdgeOp> in_ops(ops.size());
      for (size_t i = 0; i < ops.size(); ++i) {
        in_ops[i] = {ops[i].v, ops[i].u, ops[i].op};
      }
      edgebatch::SortTransposedOps(in_ops);
      const std::vector<int64_t> groups = edgebatch::GroupByNode(in_ops);
      const int64_t ngroups = static_cast<int64_t>(groups.size()) - 1;
      ParallelForDynamic(0, ngroups, [&](int64_t k) {
        NodeData* nd = nodes_.Find(in_ops[groups[k]].u);
        edgebatch::MergeApplyRun(nd->in, in_ops.data() + groups[k],
                                 in_ops.data() + groups[k + 1]);
      });
    }
    num_edges_ += stats.inserted - stats.deleted;
  }

  // One stamp bump for the whole batch. Created nodes journal alongside the
  // edge ops as long as every new id lands above the pre-batch watermark
  // (the snapshot's dense numbering only ever appends then); a batch that
  // resurrects a lower id — possible after DelNode — is not replayable and
  // invalidates instead.
  stamp_.fetch_add(1, std::memory_order_release);
  RadixSortI64(created);
  if (created.empty() || created.front() >= pre_watermark) {
    journal_.AppendBatch(stamp_.load(std::memory_order_relaxed),
                         std::move(ops), JournalCap(num_edges_),
                         std::move(created));
  } else {
    journal_.Invalidate();
  }

  RINGO_COUNTER_ADD("graph/edge_batches", 1);
  RINGO_COUNTER_ADD("graph/batch_inserts", stats.inserted);
  RINGO_COUNTER_ADD("graph/batch_deletes", stats.deleted);
  span.AddAttr("inserted", stats.inserted);
  span.AddAttr("deleted", stats.deleted);
  span.AddAttr("new_nodes", stats.new_nodes);
  return stats;
}

bool DirectedGraph::HasEdge(NodeId src, NodeId dst) const {
  const NodeData* s = nodes_.Find(src);
  return s != nullptr && SortedContains(s->out, dst);
}

int64_t DirectedGraph::OutDegree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->out.size());
}

int64_t DirectedGraph::InDegree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->in.size());
}

std::vector<NodeId> DirectedGraph::SortedNodeIds() const {
  std::vector<NodeId> ids = nodes_.Keys();
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t DirectedGraph::MemoryUsageBytes() const {
  int64_t bytes = nodes_.MemoryUsageBytes();
  nodes_.ForEach([&](NodeId, const NodeData& nd) {
    bytes += static_cast<int64_t>((nd.in.capacity() + nd.out.capacity()) *
                                  sizeof(NodeId));
  });
  return bytes;
}

bool DirectedGraph::SameStructure(const DirectedGraph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges()) {
    return false;
  }
  bool same = true;
  nodes_.ForEach([&](NodeId id, const NodeData& nd) {
    if (!same) return;
    const NodeData* o = other.GetNode(id);
    if (o == nullptr || o->in != nd.in || o->out != nd.out) same = false;
  });
  return same;
}

}  // namespace ringo
