#include "graph/directed_graph.h"

namespace ringo {

bool DirectedGraph::SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

bool DirectedGraph::SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool DirectedGraph::SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

bool DirectedGraph::AddNode(NodeId id) {
  const bool inserted = nodes_.Insert(id, NodeData{}).second;
  if (inserted) {
    NoteMaxNodeId(id);
    ++stamp_;
  }
  return inserted;
}

NodeId DirectedGraph::AddNode() {
  while (nodes_.Contains(next_node_id_)) ++next_node_id_;
  const NodeId id = next_node_id_++;
  nodes_.Insert(id, NodeData{});
  ++stamp_;
  return id;
}

bool DirectedGraph::AddEdge(NodeId src, NodeId dst) {
  AddNode(src);
  AddNode(dst);
  NodeData* s = nodes_.Find(src);
  if (!SortedInsert(s->out, dst)) return false;
  // Pointer `s` may be invalidated by nothing here (no insertions between),
  // but re-find dst because AddNode above may have rehashed before we took
  // `s` — order matters: both AddNode calls precede both Finds.
  NodeData* d = nodes_.Find(dst);
  SortedInsert(d->in, src);
  ++num_edges_;
  ++stamp_;
  return true;
}

bool DirectedGraph::DelEdge(NodeId src, NodeId dst) {
  NodeData* s = nodes_.Find(src);
  if (s == nullptr || !SortedErase(s->out, dst)) return false;
  NodeData* d = nodes_.Find(dst);
  SortedErase(d->in, src);
  --num_edges_;
  ++stamp_;
  return true;
}

bool DirectedGraph::DelNode(NodeId id) {
  NodeData* nd = nodes_.Find(id);
  if (nd == nullptr) return false;
  // Detach from neighbors. Self-loop appears in both vectors; guard so the
  // edge count drops exactly once for it.
  int64_t removed = 0;
  for (NodeId dst : nd->out) {
    ++removed;
    if (dst == id) continue;
    SortedErase(nodes_.Find(dst)->in, id);
  }
  for (NodeId src : nd->in) {
    if (src == id) continue;  // Self-loop already counted via `out`.
    ++removed;
    SortedErase(nodes_.Find(src)->out, id);
  }
  num_edges_ -= removed;
  nodes_.Erase(id);
  ++stamp_;
  return true;
}

bool DirectedGraph::HasEdge(NodeId src, NodeId dst) const {
  const NodeData* s = nodes_.Find(src);
  return s != nullptr && SortedContains(s->out, dst);
}

int64_t DirectedGraph::OutDegree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->out.size());
}

int64_t DirectedGraph::InDegree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->in.size());
}

std::vector<NodeId> DirectedGraph::SortedNodeIds() const {
  std::vector<NodeId> ids = nodes_.Keys();
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t DirectedGraph::MemoryUsageBytes() const {
  int64_t bytes = nodes_.MemoryUsageBytes();
  nodes_.ForEach([&](NodeId, const NodeData& nd) {
    bytes += static_cast<int64_t>((nd.in.capacity() + nd.out.capacity()) *
                                  sizeof(NodeId));
  });
  return bytes;
}

bool DirectedGraph::SameStructure(const DirectedGraph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges()) {
    return false;
  }
  bool same = true;
  nodes_.ForEach([&](NodeId id, const NodeData& nd) {
    if (!same) return;
    const NodeData* o = other.GetNode(id);
    if (o == nullptr || o->in != nd.in || o->out != nd.out) same = false;
  });
  return same;
}

}  // namespace ringo
