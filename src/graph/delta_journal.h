// DeltaJournal: the graph-side record of batched edge mutations that the
// incremental snapshot maintenance in algo/algo_view.* replays (DESIGN.md
// §11).
//
// Every ApplyEdgeBatch call appends one batch of *effective* edge ops (the
// net inserts/deletes that actually changed the adjacency) tagged with the
// mutation stamp the graph reached after the batch. A cached AlgoView built
// at stamp S can then be patched forward to stamp S' by replaying exactly
// the batches in (S, S'] — provided the journal covers that range with no
// gaps. Any mutation that is not journalable (single-edge AddEdge/DelEdge,
// node deletion, direct node-table splicing, or a batch that created new
// nodes) invalidates the journal, so a gap in the stamp sequence is
// represented by an empty journal and the snapshot layer falls back to a
// full rebuild.
//
// The journal is bounded: once the buffered op count crosses the cap passed
// to AppendBatch, everything is dropped (one rebuild is cheaper than
// replaying a delta comparable to the graph itself). TrimThrough discards
// batches already folded into the cached snapshot.
//
// Thread-safety: none — the journal participates in the graph's
// single-writer contract, like the mutation stamp it shadows.
#ifndef RINGO_GRAPH_DELTA_JOURNAL_H_
#define RINGO_GRAPH_DELTA_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph_defs.h"

namespace ringo {

// One effective edge mutation. For undirected graphs the endpoints are
// normalized (u <= v); `op` is +1 for an insert, -1 for a delete.
struct EdgeOp {
  NodeId u;
  NodeId v;
  int32_t op;
};

class DeltaJournal {
 public:
  // Appends the batch that moved the graph to `stamp_after`. Batches must
  // arrive in stamp order with no gaps; a non-contiguous append clears the
  // backlog first (the older batches could never be replayed past the gap).
  // `max_ops` bounds the total buffered ops: crossing it drops everything,
  // including this batch, forcing one full rebuild instead of an
  // arbitrarily long replay.
  void AppendBatch(uint64_t stamp_after, std::vector<EdgeOp> ops,
                   int64_t max_ops) {
    if (!batches_.empty() && batches_.back().stamp_after + 1 != stamp_after) {
      Invalidate();
    }
    total_ops_ += static_cast<int64_t>(ops.size());
    batches_.push_back(Batch{stamp_after, std::move(ops)});
    if (total_ops_ > max_ops) Invalidate();
  }

  // Drops everything. Called for every non-journalable mutation so the
  // stamp-contiguity invariant of `batches_` holds by construction.
  void Invalidate() {
    batches_.clear();
    total_ops_ = 0;
  }

  // True when the journal holds an unbroken batch chain covering every
  // stamp in (from_stamp, to_stamp]. With the contiguity invariant this
  // reduces to boundary checks.
  bool Covers(uint64_t from_stamp, uint64_t to_stamp) const {
    if (from_stamp >= to_stamp) return false;
    return !batches_.empty() &&
           batches_.front().stamp_after <= from_stamp + 1 &&
           batches_.back().stamp_after == to_stamp;
  }

  // Concatenates the ops of every batch with stamp_after > from_stamp, in
  // batch (i.e. mutation) order.
  std::vector<EdgeOp> OpsSince(uint64_t from_stamp) const {
    int64_t total = 0;
    for (const Batch& b : batches_) {
      if (b.stamp_after > from_stamp) {
        total += static_cast<int64_t>(b.ops.size());
      }
    }
    std::vector<EdgeOp> out;
    out.reserve(static_cast<size_t>(total));
    for (const Batch& b : batches_) {
      if (b.stamp_after > from_stamp) {
        out.insert(out.end(), b.ops.begin(), b.ops.end());
      }
    }
    return out;
  }

  // Discards batches already reflected in a snapshot built at `stamp`.
  void TrimThrough(uint64_t stamp) {
    while (!batches_.empty() && batches_.front().stamp_after <= stamp) {
      total_ops_ -= static_cast<int64_t>(batches_.front().ops.size());
      batches_.pop_front();
    }
  }

  bool empty() const { return batches_.empty(); }
  int64_t TotalOps() const { return total_ops_; }
  int64_t NumBatches() const { return static_cast<int64_t>(batches_.size()); }

 private:
  struct Batch {
    uint64_t stamp_after;
    std::vector<EdgeOp> ops;
  };

  std::deque<Batch> batches_;  // Contiguous stamp_after values.
  int64_t total_ops_ = 0;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_DELTA_JOURNAL_H_
