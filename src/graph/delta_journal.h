// DeltaJournal: the graph-side record of batched edge mutations that the
// incremental snapshot maintenance in algo/algo_view.* replays (DESIGN.md
// §11).
//
// Every ApplyEdgeBatch call appends one batch of *effective* edge ops (the
// net inserts/deletes that actually changed the adjacency) tagged with the
// mutation stamp the graph reached after the batch, plus the ids of any
// nodes the batch created. A cached AlgoView built at stamp S can then be
// patched forward to stamp S' by replaying exactly the batches in (S, S']
// — provided the journal covers that range with no gaps. Node-creating
// batches stay replayable as long as every created id lands above the
// graph's id watermark (the snapshot's dense numbering is ascending by id,
// so strictly-larger ids append without renumbering anything); batches
// that recycle a lower id, and any mutation that is not journalable at all
// (single-edge AddEdge/DelEdge, node deletion, direct node-table
// splicing), invalidate the journal, so a gap in the stamp sequence is
// represented by an empty journal and the snapshot layer falls back to a
// full rebuild.
//
// The journal is bounded: an append that would push the buffered op count
// (edge ops + node adds) past the cap drops everything *without buffering
// the oversized batch first* (one rebuild is cheaper than replaying a
// delta comparable to the graph itself). TrimThrough discards batches
// already folded into the cached snapshot.
//
// Thread-safety: none by itself — the owning graph serializes writers
// behind its structure lock (exclusive) and the snapshot single-flight
// reads/trims under the same lock in shared mode (see
// graph/snapshot_cache.h and DESIGN.md §12).
#ifndef RINGO_GRAPH_DELTA_JOURNAL_H_
#define RINGO_GRAPH_DELTA_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph_defs.h"

namespace ringo {

// One effective edge mutation. For undirected graphs the endpoints are
// normalized (u <= v); `op` is +1 for an insert, -1 for a delete.
struct EdgeOp {
  NodeId u;
  NodeId v;
  int32_t op;
};

class DeltaJournal {
 public:
  // Appends the batch that moved the graph to `stamp_after`. Batches must
  // arrive in stamp order with no gaps; a non-contiguous append clears the
  // backlog first (the older batches could never be replayed past the gap).
  // `new_nodes` lists the ids the batch created, ascending, every one
  // greater than any id the graph held before the batch (the caller checks
  // the watermark). `max_ops` bounds the total buffered ops; an append that
  // would cross it is rejected up front — the backlog and the incoming
  // batch are dropped without ever buffering the oversized batch, so the
  // journal never transiently holds more than the cap.
  void AppendBatch(uint64_t stamp_after, std::vector<EdgeOp> ops,
                   int64_t max_ops, std::vector<NodeId> new_nodes = {}) {
    if (!batches_.empty() && batches_.back().stamp_after + 1 != stamp_after) {
      Invalidate();
    }
    const int64_t incoming =
        static_cast<int64_t>(ops.size()) + static_cast<int64_t>(new_nodes.size());
    if (total_ops_ + incoming > max_ops) {
      Invalidate();
      return;
    }
    total_ops_ += incoming;
    batches_.push_back(
        Batch{stamp_after, std::move(ops), std::move(new_nodes)});
  }

  // Drops everything. Called for every non-journalable mutation so the
  // stamp-contiguity invariant of `batches_` holds by construction.
  void Invalidate() {
    batches_.clear();
    total_ops_ = 0;
  }

  // True when the journal holds an unbroken batch chain covering every
  // stamp in (from_stamp, to_stamp]. With the contiguity invariant this
  // reduces to boundary checks.
  bool Covers(uint64_t from_stamp, uint64_t to_stamp) const {
    if (from_stamp >= to_stamp) return false;
    return !batches_.empty() &&
           batches_.front().stamp_after <= from_stamp + 1 &&
           batches_.back().stamp_after == to_stamp;
  }

  // Concatenates the ops of every batch with stamp_after > from_stamp, in
  // batch (i.e. mutation) order.
  std::vector<EdgeOp> OpsSince(uint64_t from_stamp) const {
    int64_t total = 0;
    for (const Batch& b : batches_) {
      if (b.stamp_after > from_stamp) {
        total += static_cast<int64_t>(b.ops.size());
      }
    }
    std::vector<EdgeOp> out;
    out.reserve(static_cast<size_t>(total));
    for (const Batch& b : batches_) {
      if (b.stamp_after > from_stamp) {
        out.insert(out.end(), b.ops.begin(), b.ops.end());
      }
    }
    return out;
  }

  // Concatenates the created-node ids of every batch with stamp_after >
  // from_stamp. Ascending across the whole result: each batch's list is
  // ascending and starts above the watermark the previous batch advanced.
  std::vector<NodeId> NodesSince(uint64_t from_stamp) const {
    std::vector<NodeId> out;
    for (const Batch& b : batches_) {
      if (b.stamp_after > from_stamp) {
        out.insert(out.end(), b.new_nodes.begin(), b.new_nodes.end());
      }
    }
    return out;
  }

  // Discards batches already reflected in a snapshot built at `stamp`.
  void TrimThrough(uint64_t stamp) {
    while (!batches_.empty() && batches_.front().stamp_after <= stamp) {
      total_ops_ -= static_cast<int64_t>(batches_.front().ops.size()) +
                    static_cast<int64_t>(batches_.front().new_nodes.size());
      batches_.pop_front();
    }
  }

  bool empty() const { return batches_.empty(); }
  int64_t TotalOps() const { return total_ops_; }
  int64_t NumBatches() const { return static_cast<int64_t>(batches_.size()); }

 private:
  struct Batch {
    uint64_t stamp_after;
    std::vector<EdgeOp> ops;
    std::vector<NodeId> new_nodes;  // Ascending; all above the pre-batch
                                    // id watermark.
  };

  std::deque<Batch> batches_;  // Contiguous stamp_after values.
  int64_t total_ops_ = 0;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_DELTA_JOURNAL_H_
