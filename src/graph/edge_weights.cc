#include "graph/edge_weights.h"

// EdgeWeights is header-only today; this translation unit anchors the
// library target and reserves room for out-of-line growth.
