#include "graph/csr_graph.h"

#include <algorithm>

#include "graph/directed_graph.h"
#include "util/parallel.h"
#include "util/radix_sort.h"

namespace ringo {

CsrGraph CsrGraph::FromEdges(std::vector<Edge> edges) {
  CsrGraph g;
  // Node id universe = endpoints of all edges, densely renumbered in
  // ascending id order.
  std::vector<NodeId> ids;
  ids.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    ids.push_back(e.first);
    ids.push_back(e.second);
  }
  ParallelSort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  g.ids_ = std::move(ids);
  const int64_t n = g.NumNodes();
  g.index_.Reserve(n);
  for (int64_t i = 0; i < n; ++i) g.index_.Insert(g.ids_[i], i);

  // Translate edges to dense indices, sort, dedupe.
  std::vector<Edge> dense(edges.size());
  ParallelFor(0, static_cast<int64_t>(edges.size()), [&](int64_t i) {
    dense[i] = {*g.index_.Find(edges[i].first), *g.index_.Find(edges[i].second)};
  });
  ParallelSort(dense.begin(), dense.end());
  dense.erase(std::unique(dense.begin(), dense.end()), dense.end());
  const int64_t m = static_cast<int64_t>(dense.size());

  // Out-CSR from (src, dst) order.
  std::vector<int64_t> out_deg(n, 0);
  for (const Edge& e : dense) ++out_deg[e.first];
  g.out_offsets_.assign(n + 1, 0);
  for (int64_t i = 0; i < n; ++i) g.out_offsets_[i + 1] = g.out_offsets_[i] + out_deg[i];
  g.out_nbrs_.resize(m);
  ParallelFor(0, m, [&](int64_t i) { g.out_nbrs_[i] = dense[i].second; });

  // In-CSR from (dst, src) order.
  std::vector<Edge> rev(dense.size());
  ParallelFor(0, m, [&](int64_t i) { rev[i] = {dense[i].second, dense[i].first}; });
  ParallelSort(rev.begin(), rev.end());
  std::vector<int64_t> in_deg(n, 0);
  for (const Edge& e : rev) ++in_deg[e.first];
  g.in_offsets_.assign(n + 1, 0);
  for (int64_t i = 0; i < n; ++i) g.in_offsets_[i + 1] = g.in_offsets_[i] + in_deg[i];
  g.in_nbrs_.resize(m);
  ParallelFor(0, m, [&](int64_t i) { g.in_nbrs_[i] = rev[i].second; });
  return g;
}

CsrGraph CsrGraph::FromGraph(const DirectedGraph& src) {
  // Degree count + exclusive prefix sum + parallel translated fill straight
  // from the sorted adjacency vectors — the dynamic graph already has
  // unique sorted edges, so the materialize/sort/dedupe path of FromEdges
  // is unnecessary, and translation through the monotone id->index map
  // keeps each neighbor run sorted.
  CsrGraph g;
  g.ids_ = src.NodeIds();
  RadixSortI64(g.ids_);
  const int64_t n = g.NumNodes();
  g.index_.Reserve(n);
  for (int64_t i = 0; i < n; ++i) g.index_.Insert(g.ids_[i], i);

  std::vector<const DirectedGraph::NodeData*> nodes(n);
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  ParallelFor(0, n, [&](int64_t i) {
    nodes[i] = src.GetNode(g.ids_[i]);
    g.out_offsets_[i] = static_cast<int64_t>(nodes[i]->out.size());
    g.in_offsets_[i] = static_cast<int64_t>(nodes[i]->in.size());
  });
  const int64_t m_out = ExclusivePrefixSum(g.out_offsets_.data(),
                                           g.out_offsets_.data(), n + 1);
  const int64_t m_in = ExclusivePrefixSum(g.in_offsets_.data(),
                                          g.in_offsets_.data(), n + 1);
  g.out_nbrs_.resize(m_out);
  g.in_nbrs_.resize(m_in);
  ParallelForDynamic(0, n, [&](int64_t i) {
    int64_t pos = g.out_offsets_[i];
    for (NodeId v : nodes[i]->out) g.out_nbrs_[pos++] = *g.index_.Find(v);
    pos = g.in_offsets_[i];
    for (NodeId v : nodes[i]->in) g.in_nbrs_[pos++] = *g.index_.Find(v);
  });
  return g;
}

bool CsrGraph::HasEdge(NodeId src, NodeId dst) const {
  const int64_t s = IndexOf(src);
  const int64_t d = IndexOf(dst);
  if (s < 0 || d < 0) return false;
  const auto nbrs = OutNeighbors(s);
  return std::binary_search(nbrs.begin(), nbrs.end(), d);
}

bool CsrGraph::DelEdge(NodeId src, NodeId dst) {
  const int64_t s = IndexOf(src);
  const int64_t d = IndexOf(dst);
  if (s < 0 || d < 0) return false;
  const int64_t n = NumNodes();

  // Locate in the out array.
  const auto out = OutNeighbors(s);
  auto out_it = std::lower_bound(out.begin(), out.end(), d);
  if (out_it == out.end() || *out_it != d) return false;
  const int64_t out_pos = out_offsets_[s] + (out_it - out.begin());
  // Compact: every element after out_pos shifts left — the O(|E|) cost.
  out_nbrs_.erase(out_nbrs_.begin() + out_pos);
  for (int64_t i = s + 1; i <= n; ++i) --out_offsets_[i];

  const auto in = InNeighbors(d);
  auto in_it = std::lower_bound(in.begin(), in.end(), s);
  const int64_t in_pos = in_offsets_[d] + (in_it - in.begin());
  in_nbrs_.erase(in_nbrs_.begin() + in_pos);
  for (int64_t i = d + 1; i <= n; ++i) --in_offsets_[i];
  return true;
}

int64_t CsrGraph::MemoryUsageBytes() const {
  return static_cast<int64_t>(
      ids_.capacity() * sizeof(NodeId) + index_.MemoryUsageBytes() +
      (out_offsets_.capacity() + in_offsets_.capacity() +
       out_nbrs_.capacity() + in_nbrs_.capacity()) *
          sizeof(int64_t));
}

}  // namespace ringo
