#include "graph/undirected_graph.h"

namespace ringo {

bool UndirectedGraph::SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

bool UndirectedGraph::SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool UndirectedGraph::AddNode(NodeId id) {
  const bool inserted = nodes_.Insert(id, NodeData{}).second;
  if (inserted) {
    NoteMaxNodeId(id);
    ++stamp_;
  }
  return inserted;
}

NodeId UndirectedGraph::AddNode() {
  while (nodes_.Contains(next_node_id_)) ++next_node_id_;
  const NodeId id = next_node_id_++;
  nodes_.Insert(id, NodeData{});
  ++stamp_;
  return id;
}

bool UndirectedGraph::AddEdge(NodeId src, NodeId dst) {
  AddNode(src);
  AddNode(dst);
  if (!SortedInsert(nodes_.Find(src)->nbrs, dst)) return false;
  if (src != dst) SortedInsert(nodes_.Find(dst)->nbrs, src);
  ++num_edges_;
  ++stamp_;
  return true;
}

bool UndirectedGraph::DelEdge(NodeId src, NodeId dst) {
  NodeData* s = nodes_.Find(src);
  if (s == nullptr || !SortedErase(s->nbrs, dst)) return false;
  if (src != dst) SortedErase(nodes_.Find(dst)->nbrs, src);
  --num_edges_;
  ++stamp_;
  return true;
}

bool UndirectedGraph::DelNode(NodeId id) {
  NodeData* nd = nodes_.Find(id);
  if (nd == nullptr) return false;
  num_edges_ -= static_cast<int64_t>(nd->nbrs.size());
  for (NodeId v : nd->nbrs) {
    if (v == id) continue;  // Self-loop: nothing to detach elsewhere.
    SortedErase(nodes_.Find(v)->nbrs, id);
  }
  nodes_.Erase(id);
  ++stamp_;
  return true;
}

bool UndirectedGraph::HasEdge(NodeId src, NodeId dst) const {
  const NodeData* s = nodes_.Find(src);
  return s != nullptr &&
         std::binary_search(s->nbrs.begin(), s->nbrs.end(), dst);
}

int64_t UndirectedGraph::Degree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->nbrs.size());
}

std::vector<NodeId> UndirectedGraph::SortedNodeIds() const {
  std::vector<NodeId> ids = nodes_.Keys();
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t UndirectedGraph::MemoryUsageBytes() const {
  int64_t bytes = nodes_.MemoryUsageBytes();
  nodes_.ForEach([&](NodeId, const NodeData& nd) {
    bytes += static_cast<int64_t>(nd.nbrs.capacity() * sizeof(NodeId));
  });
  return bytes;
}

bool UndirectedGraph::SameStructure(const UndirectedGraph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges()) {
    return false;
  }
  bool same = true;
  nodes_.ForEach([&](NodeId id, const NodeData& nd) {
    if (!same) return;
    const NodeData* o = other.GetNode(id);
    if (o == nullptr || o->nbrs != nd.nbrs) same = false;
  });
  return same;
}

}  // namespace ringo
