#include "graph/undirected_graph.h"

#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace ringo {

namespace {

int64_t JournalCap(int64_t num_edges) {
  return std::max<int64_t>(4096, num_edges / 2);
}

// Unordered edge pairs: (u, v) and (v, u) name the same edge, so batches
// are normalized to u <= v before sorting/deduping (and journaled that way).
void Normalize(std::vector<Edge>& edges) {
  for (Edge& e : edges) {
    if (e.first > e.second) std::swap(e.first, e.second);
  }
}

}  // namespace

UndirectedGraph::UndirectedGraph(const UndirectedGraph& other) {
  std::shared_lock<std::shared_mutex> lk(other.structure_mu_);
  nodes_ = other.nodes_;
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = other.journal_;
}

UndirectedGraph& UndirectedGraph::operator=(const UndirectedGraph& other) {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> lk_this(structure_mu_, std::defer_lock);
  std::shared_lock<std::shared_mutex> lk_other(other.structure_mu_,
                                               std::defer_lock);
  std::lock(lk_this, lk_other);
  nodes_ = other.nodes_;
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = other.journal_;
  return *this;
}

UndirectedGraph::UndirectedGraph(UndirectedGraph&& other) noexcept {
  std::unique_lock<std::shared_mutex> lk(other.structure_mu_);
  nodes_ = std::move(other.nodes_);
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = std::move(other.journal_);
  other.num_edges_ = 0;
  other.next_node_id_ = 0;
  other.journal_.Invalidate();
}

UndirectedGraph& UndirectedGraph::operator=(UndirectedGraph&& other) noexcept {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> lk_this(structure_mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> lk_other(other.structure_mu_,
                                               std::defer_lock);
  std::lock(lk_this, lk_other);
  nodes_ = std::move(other.nodes_);
  num_edges_ = other.num_edges_;
  next_node_id_ = other.next_node_id_;
  stamp_.store(other.stamp_.load(std::memory_order_acquire),
               std::memory_order_release);
  journal_ = std::move(other.journal_);
  other.num_edges_ = 0;
  other.next_node_id_ = 0;
  other.journal_.Invalidate();
  return *this;
}

bool UndirectedGraph::SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

bool UndirectedGraph::SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool UndirectedGraph::EnsureNode(NodeId id) {
  const bool inserted = nodes_.Insert(id, NodeData{}).second;
  if (inserted) next_node_id_ = std::max(next_node_id_, id + 1);
  return inserted;
}

bool UndirectedGraph::AddNodeLocked(NodeId id) {
  const bool inserted = EnsureNode(id);
  if (inserted) BumpStamp();
  return inserted;
}

bool UndirectedGraph::AddNode(NodeId id) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  return AddNodeLocked(id);
}

NodeId UndirectedGraph::AddNode() {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // O(1) amortized: EnsureNode keeps the watermark past every insert.
  while (nodes_.Contains(next_node_id_)) ++next_node_id_;
  const NodeId id = next_node_id_;
  AddNodeLocked(id);
  return id;
}

bool UndirectedGraph::AddEdge(NodeId src, NodeId dst) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // One bump per effective mutation; a no-op insert never bumps.
  EnsureNode(src);
  EnsureNode(dst);
  if (!SortedInsert(nodes_.Find(src)->nbrs, dst)) return false;
  if (src != dst) SortedInsert(nodes_.Find(dst)->nbrs, src);
  ++num_edges_;
  BumpStamp();
  return true;
}

bool UndirectedGraph::DelEdge(NodeId src, NodeId dst) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  NodeData* s = nodes_.Find(src);
  if (s == nullptr || !SortedErase(s->nbrs, dst)) return false;
  if (src != dst) SortedErase(nodes_.Find(dst)->nbrs, src);
  --num_edges_;
  BumpStamp();
  return true;
}

bool UndirectedGraph::DelNode(NodeId id) {
  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  NodeData* nd = nodes_.Find(id);
  if (nd == nullptr) return false;
  num_edges_ -= static_cast<int64_t>(nd->nbrs.size());
  for (NodeId v : nd->nbrs) {
    if (v == id) continue;  // Self-loop: nothing to detach elsewhere.
    SortedErase(nodes_.Find(v)->nbrs, id);
  }
  nodes_.Erase(id);
  BumpStamp();
  return true;
}

EdgeBatchStats UndirectedGraph::ApplyEdgeBatch(std::vector<Edge> inserts,
                                               std::vector<Edge> deletes) {
  trace::Span span("Graph/ApplyEdgeBatch");
  span.AddAttr("inserts_raw", static_cast<int64_t>(inserts.size()));
  span.AddAttr("deletes_raw", static_cast<int64_t>(deletes.size()));
  EdgeBatchStats stats;
  {
    trace::Span s("Graph/ApplyEdgeBatch/sort_dedup");
    Normalize(inserts);
    Normalize(deletes);
    edgebatch::SortDedup(inserts);
    edgebatch::SortDedup(deletes);
  }

  std::unique_lock<std::shared_mutex> lk(structure_mu_);
  // Ids at or above this watermark did not exist before the batch, so the
  // batch stays journal-replayable even when it creates them (DESIGN.md
  // §11).
  const NodeId pre_watermark = next_node_id_;
  std::vector<NodeId> created;

  // Net ops over normalized pairs; same inserts-then-deletes semantics and
  // merged sorted walk as the directed batch (ops come out (u, v)-sorted,
  // and runs sharing a first endpoint reuse one adjacency lookup).
  std::vector<EdgeOp> ops;
  {
    trace::Span s("Graph/ApplyEdgeBatch/resolve");
    // One EnsureNode per distinct endpoint, as in the directed batch.
    {
      bool have_last = false;
      NodeId last = 0;
      std::vector<NodeId> seconds;
      seconds.reserve(inserts.size());
      for (const Edge& e : inserts) {
        if (!have_last || e.first != last) {
          if (EnsureNode(e.first)) created.push_back(e.first);
          last = e.first;
          have_last = true;
        }
        seconds.push_back(e.second);
      }
      RadixSortI64(seconds);
      seconds.erase(std::unique(seconds.begin(), seconds.end()),
                    seconds.end());
      for (const NodeId v : seconds) {
        if (EnsureNode(v)) created.push_back(v);
      }
      stats.new_nodes = static_cast<int64_t>(created.size());
    }

    ops.reserve(inserts.size() + deletes.size());
    NodeId cached_u = -1;
    const NodeData* cached_nd = nullptr;
    const auto has = [&](const Edge& e) {
      if (e.first != cached_u) {
        cached_u = e.first;
        cached_nd = nodes_.Find(e.first);
      }
      return cached_nd != nullptr &&
             std::binary_search(cached_nd->nbrs.begin(),
                                cached_nd->nbrs.end(), e.second);
    };
    size_t ii = 0, di = 0;
    while (ii < inserts.size() || di < deletes.size()) {
      const bool ins_next =
          di == deletes.size() ||
          (ii < inserts.size() && inserts[ii] < deletes[di]);
      if (ins_next) {
        if (!has(inserts[ii])) ops.push_back(
            {inserts[ii].first, inserts[ii].second, +1});
        ++ii;
      } else {
        if (ii < inserts.size() && inserts[ii] == deletes[di]) {
          ++ii;  // Delete wins over the same pair's insert.
        }
        if (has(deletes[di])) ops.push_back(
            {deletes[di].first, deletes[di].second, -1});
        ++di;
      }
    }
    for (const EdgeOp& o : ops) (o.op > 0 ? stats.inserted : stats.deleted)++;
  }

  if (!stats.Changed()) return stats;

  if (!ops.empty()) {
    trace::Span apply_span("Graph/ApplyEdgeBatch/apply");
    // Each undirected op lands in both endpoints' vectors (self-loops in
    // one), so expand to owner-keyed adjacency ops before grouping.
    std::vector<EdgeOp> adj_ops;
    adj_ops.reserve(2 * ops.size());
    for (const EdgeOp& o : ops) {
      adj_ops.push_back(o);
      if (o.u != o.v) adj_ops.push_back({o.v, o.u, o.op});
    }
    edgebatch::SortOps(adj_ops);
    const std::vector<int64_t> groups = edgebatch::GroupByNode(adj_ops);
    const int64_t ngroups = static_cast<int64_t>(groups.size()) - 1;
    ParallelForDynamic(0, ngroups, [&](int64_t k) {
      NodeData* nd = nodes_.Find(adj_ops[groups[k]].u);
      edgebatch::MergeApplyRun(nd->nbrs, adj_ops.data() + groups[k],
                               adj_ops.data() + groups[k + 1]);
    });
    num_edges_ += stats.inserted - stats.deleted;
  }

  // Created nodes journal alongside the edge ops as long as every new id
  // lands above the pre-batch watermark; a batch that resurrects a lower id
  // (possible after DelNode) is not replayable and invalidates instead.
  stamp_.fetch_add(1, std::memory_order_release);
  RadixSortI64(created);
  if (created.empty() || created.front() >= pre_watermark) {
    edgebatch::SortOps(ops);
    journal_.AppendBatch(stamp_.load(std::memory_order_relaxed),
                         std::move(ops), JournalCap(num_edges_),
                         std::move(created));
  } else {
    journal_.Invalidate();
  }

  RINGO_COUNTER_ADD("graph/edge_batches", 1);
  RINGO_COUNTER_ADD("graph/batch_inserts", stats.inserted);
  RINGO_COUNTER_ADD("graph/batch_deletes", stats.deleted);
  span.AddAttr("inserted", stats.inserted);
  span.AddAttr("deleted", stats.deleted);
  span.AddAttr("new_nodes", stats.new_nodes);
  return stats;
}

bool UndirectedGraph::HasEdge(NodeId src, NodeId dst) const {
  const NodeData* s = nodes_.Find(src);
  return s != nullptr &&
         std::binary_search(s->nbrs.begin(), s->nbrs.end(), dst);
}

int64_t UndirectedGraph::Degree(NodeId id) const {
  const NodeData* nd = nodes_.Find(id);
  return nd == nullptr ? 0 : static_cast<int64_t>(nd->nbrs.size());
}

std::vector<NodeId> UndirectedGraph::SortedNodeIds() const {
  std::vector<NodeId> ids = nodes_.Keys();
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t UndirectedGraph::MemoryUsageBytes() const {
  int64_t bytes = nodes_.MemoryUsageBytes();
  nodes_.ForEach([&](NodeId, const NodeData& nd) {
    bytes += static_cast<int64_t>(nd.nbrs.capacity() * sizeof(NodeId));
  });
  return bytes;
}

bool UndirectedGraph::SameStructure(const UndirectedGraph& other) const {
  if (NumNodes() != other.NumNodes() || NumEdges() != other.NumEdges()) {
    return false;
  }
  bool same = true;
  nodes_.ForEach([&](NodeId id, const NodeData& nd) {
    if (!same) return;
    const NodeData* o = other.GetNode(id);
    if (o == nullptr || o->nbrs != nd.nbrs) same = false;
  });
  return same;
}

}  // namespace ringo
