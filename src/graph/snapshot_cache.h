// SnapshotCache: the concurrency protocol behind the graph's cached
// analytics snapshot (DESIGN.md §12).
//
// The cache slot holds one type-erased immutable snapshot and the mutation
// stamp it was built at. Any number of reader threads may call Acquire()
// concurrently with one writer mutating the graph; the protocol guarantees
//   * readers always observe a consistent (view, stamp) pair — both fields
//     change together under the cache mutex, never torn;
//   * refreshes are single-flight: when the cached snapshot is stale, the
//     first thread to notice becomes the sole builder and everyone else
//     blocks on the condition variable until the fresh snapshot is
//     published. A thundering herd of N cold readers therefore triggers
//     exactly one build; the other N-1 come back as cache hits.
//
// The builder must do the actual (re)build while holding the owning
// graph's structure lock in shared mode (see ReadLockStructure on the
// graph classes), so the stamp it reads cannot move mid-build and the
// journal/adjacency state it consumes is not concurrently mutated. The
// cache mutex itself is *not* held during the build — hits stay cheap.
//
// The slot is type-erased (shared_ptr<const void>) so the graph layer
// stays independent of the algo layer, exactly like the raw pointer+stamp
// pair it replaces.
#ifndef RINGO_GRAPH_SNAPSHOT_CACHE_H_
#define RINGO_GRAPH_SNAPSHOT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace ringo {

class SnapshotCache {
 public:
  SnapshotCache() = default;
  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  // Outcome of Acquire(): either a fresh snapshot (builder == false) or a
  // claim on the single build flight (builder == true, view/stamp describe
  // the stale predecessor — view is nullptr on a cold cache).
  struct Claim {
    std::shared_ptr<const void> view;
    uint64_t stamp = 0;
    bool builder = false;
  };

  // Returns the cached snapshot if it matches the graph's current stamp,
  // else blocks behind an in-flight build and re-checks, else claims the
  // build flight for this caller. `stamp_fn` re-reads the graph's current
  // mutation stamp (an atomic load) on every wakeup, so a waiter that finds
  // the published snapshot already stale again becomes the next builder.
  // A builder MUST later call exactly one of Publish() or AbortBuild().
  template <typename StampFn>
  Claim Acquire(const StampFn& stamp_fn) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (view_ != nullptr && stamp_ == stamp_fn()) {
        return Claim{view_, stamp_, /*builder=*/false};
      }
      if (!building_) {
        building_ = true;
        return Claim{view_, stamp_, /*builder=*/true};
      }
      cv_.wait(lk);
    }
  }

  // Publishes the snapshot the builder produced (built while holding the
  // graph's structure lock at `stamp`) and wakes every waiter.
  void Publish(std::shared_ptr<const void> view, uint64_t stamp) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      view_ = std::move(view);
      stamp_ = stamp;
      building_ = false;
    }
    cv_.notify_all();
  }

  // Releases the build flight without publishing (builder unwound on an
  // error path); waiters re-run the Acquire loop and one becomes the next
  // builder.
  void AbortBuild() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      building_ = false;
    }
    cv_.notify_all();
  }

  // RAII companion for the builder side of Acquire(): aborts the flight on
  // scope exit unless Publish() ran.
  class BuildScope {
   public:
    explicit BuildScope(SnapshotCache* cache) : cache_(cache) {}
    ~BuildScope() {
      if (cache_ != nullptr) cache_->AbortBuild();
    }
    BuildScope(const BuildScope&) = delete;
    BuildScope& operator=(const BuildScope&) = delete;
    void Publish(std::shared_ptr<const void> view, uint64_t stamp) {
      cache_->Publish(std::move(view), stamp);
      cache_ = nullptr;
    }

   private:
    SnapshotCache* cache_;
  };

  // Test/introspection peek at the cached pair (consistent, may be stale).
  std::pair<std::shared_ptr<const void>, uint64_t> Peek() const {
    std::lock_guard<std::mutex> lk(mu_);
    return {view_, stamp_};
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<const void> view_;
  uint64_t stamp_ = 0;
  bool building_ = false;
};

}  // namespace ringo

#endif  // RINGO_GRAPH_SNAPSHOT_CACHE_H_
