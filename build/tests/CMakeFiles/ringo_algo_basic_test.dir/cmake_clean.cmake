file(REMOVE_RECURSE
  "CMakeFiles/ringo_algo_basic_test.dir/algo/bfs_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/bfs_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/biconnectivity_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/biconnectivity_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/connectivity_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/connectivity_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/kcore_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/kcore_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/sssp_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/sssp_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/topology_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/topology_test.cc.o.d"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/transform_test.cc.o"
  "CMakeFiles/ringo_algo_basic_test.dir/algo/transform_test.cc.o.d"
  "ringo_algo_basic_test"
  "ringo_algo_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_algo_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
