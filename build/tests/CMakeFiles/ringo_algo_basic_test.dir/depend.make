# Empty dependencies file for ringo_algo_basic_test.
# This may be replaced when dependencies are built.
