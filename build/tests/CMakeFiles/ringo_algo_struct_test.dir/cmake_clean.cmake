file(REMOVE_RECURSE
  "CMakeFiles/ringo_algo_struct_test.dir/algo/anf_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/anf_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/cascade_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/cascade_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/community_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/community_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/diameter_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/diameter_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/louvain_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/louvain_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/mst_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/mst_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/similarity_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/similarity_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/stats_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/stats_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/triad_census_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/triad_census_test.cc.o.d"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/triangles_test.cc.o"
  "CMakeFiles/ringo_algo_struct_test.dir/algo/triangles_test.cc.o.d"
  "ringo_algo_struct_test"
  "ringo_algo_struct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_algo_struct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
