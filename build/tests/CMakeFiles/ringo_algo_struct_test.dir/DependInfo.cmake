
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo/anf_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/anf_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/anf_test.cc.o.d"
  "/root/repo/tests/algo/cascade_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/cascade_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/cascade_test.cc.o.d"
  "/root/repo/tests/algo/community_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/community_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/community_test.cc.o.d"
  "/root/repo/tests/algo/diameter_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/diameter_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/diameter_test.cc.o.d"
  "/root/repo/tests/algo/louvain_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/louvain_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/louvain_test.cc.o.d"
  "/root/repo/tests/algo/mst_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/mst_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/mst_test.cc.o.d"
  "/root/repo/tests/algo/similarity_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/similarity_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/similarity_test.cc.o.d"
  "/root/repo/tests/algo/stats_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/stats_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/stats_test.cc.o.d"
  "/root/repo/tests/algo/triad_census_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/triad_census_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/triad_census_test.cc.o.d"
  "/root/repo/tests/algo/triangles_test.cc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/triangles_test.cc.o" "gcc" "tests/CMakeFiles/ringo_algo_struct_test.dir/algo/triangles_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
