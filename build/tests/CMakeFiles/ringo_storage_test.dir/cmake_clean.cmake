file(REMOVE_RECURSE
  "CMakeFiles/ringo_storage_test.dir/storage/concurrent_test.cc.o"
  "CMakeFiles/ringo_storage_test.dir/storage/concurrent_test.cc.o.d"
  "CMakeFiles/ringo_storage_test.dir/storage/flat_hash_map_test.cc.o"
  "CMakeFiles/ringo_storage_test.dir/storage/flat_hash_map_test.cc.o.d"
  "CMakeFiles/ringo_storage_test.dir/storage/string_pool_test.cc.o"
  "CMakeFiles/ringo_storage_test.dir/storage/string_pool_test.cc.o.d"
  "ringo_storage_test"
  "ringo_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
