# Empty compiler generated dependencies file for ringo_storage_test.
# This may be replaced when dependencies are built.
