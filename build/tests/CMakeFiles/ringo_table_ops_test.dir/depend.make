# Empty dependencies file for ringo_table_ops_test.
# This may be replaced when dependencies are built.
