file(REMOVE_RECURSE
  "CMakeFiles/ringo_table_ops_test.dir/table/group_by_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/group_by_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/join_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/join_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/next_k_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/next_k_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/set_ops_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/set_ops_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/sim_join_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/sim_join_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/table_ext_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/table_ext_test.cc.o.d"
  "CMakeFiles/ringo_table_ops_test.dir/table/table_io_test.cc.o"
  "CMakeFiles/ringo_table_ops_test.dir/table/table_io_test.cc.o.d"
  "ringo_table_ops_test"
  "ringo_table_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_table_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
