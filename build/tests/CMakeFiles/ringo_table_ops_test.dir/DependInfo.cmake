
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table/group_by_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/group_by_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/group_by_test.cc.o.d"
  "/root/repo/tests/table/join_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/join_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/join_test.cc.o.d"
  "/root/repo/tests/table/next_k_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/next_k_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/next_k_test.cc.o.d"
  "/root/repo/tests/table/set_ops_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/set_ops_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/set_ops_test.cc.o.d"
  "/root/repo/tests/table/sim_join_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/sim_join_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/sim_join_test.cc.o.d"
  "/root/repo/tests/table/table_ext_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/table_ext_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/table_ext_test.cc.o.d"
  "/root/repo/tests/table/table_io_test.cc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/table_io_test.cc.o" "gcc" "tests/CMakeFiles/ringo_table_ops_test.dir/table/table_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
