# Empty compiler generated dependencies file for ringo_util_test.
# This may be replaced when dependencies are built.
