file(REMOVE_RECURSE
  "CMakeFiles/ringo_util_test.dir/util/logging_test.cc.o"
  "CMakeFiles/ringo_util_test.dir/util/logging_test.cc.o.d"
  "CMakeFiles/ringo_util_test.dir/util/parallel_test.cc.o"
  "CMakeFiles/ringo_util_test.dir/util/parallel_test.cc.o.d"
  "CMakeFiles/ringo_util_test.dir/util/rng_test.cc.o"
  "CMakeFiles/ringo_util_test.dir/util/rng_test.cc.o.d"
  "CMakeFiles/ringo_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/ringo_util_test.dir/util/status_test.cc.o.d"
  "CMakeFiles/ringo_util_test.dir/util/string_util_test.cc.o"
  "CMakeFiles/ringo_util_test.dir/util/string_util_test.cc.o.d"
  "ringo_util_test"
  "ringo_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
