# Empty compiler generated dependencies file for ringo_engine_test.
# This may be replaced when dependencies are built.
