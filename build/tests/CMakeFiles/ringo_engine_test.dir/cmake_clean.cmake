file(REMOVE_RECURSE
  "CMakeFiles/ringo_engine_test.dir/core/engine_test.cc.o"
  "CMakeFiles/ringo_engine_test.dir/core/engine_test.cc.o.d"
  "ringo_engine_test"
  "ringo_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
