# Empty dependencies file for ringo_gen_test.
# This may be replaced when dependencies are built.
