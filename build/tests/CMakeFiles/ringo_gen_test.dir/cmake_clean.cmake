file(REMOVE_RECURSE
  "CMakeFiles/ringo_gen_test.dir/gen/graph_gen_test.cc.o"
  "CMakeFiles/ringo_gen_test.dir/gen/graph_gen_test.cc.o.d"
  "CMakeFiles/ringo_gen_test.dir/gen/stackoverflow_gen_test.cc.o"
  "CMakeFiles/ringo_gen_test.dir/gen/stackoverflow_gen_test.cc.o.d"
  "ringo_gen_test"
  "ringo_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
