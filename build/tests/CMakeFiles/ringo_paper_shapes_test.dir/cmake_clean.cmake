file(REMOVE_RECURSE
  "CMakeFiles/ringo_paper_shapes_test.dir/integration/paper_shapes_test.cc.o"
  "CMakeFiles/ringo_paper_shapes_test.dir/integration/paper_shapes_test.cc.o.d"
  "ringo_paper_shapes_test"
  "ringo_paper_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_paper_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
