file(REMOVE_RECURSE
  "CMakeFiles/ringo_algo_rank_test.dir/algo/centrality_test.cc.o"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/centrality_test.cc.o.d"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/hits_test.cc.o"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/hits_test.cc.o.d"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/pagerank_test.cc.o"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/pagerank_test.cc.o.d"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/random_walk_test.cc.o"
  "CMakeFiles/ringo_algo_rank_test.dir/algo/random_walk_test.cc.o.d"
  "ringo_algo_rank_test"
  "ringo_algo_rank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_algo_rank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
