# Empty compiler generated dependencies file for ringo_algo_rank_test.
# This may be replaced when dependencies are built.
