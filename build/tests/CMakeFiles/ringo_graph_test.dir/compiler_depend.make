# Empty compiler generated dependencies file for ringo_graph_test.
# This may be replaced when dependencies are built.
