
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/csr_graph_test.cc" "tests/CMakeFiles/ringo_graph_test.dir/graph/csr_graph_test.cc.o" "gcc" "tests/CMakeFiles/ringo_graph_test.dir/graph/csr_graph_test.cc.o.d"
  "/root/repo/tests/graph/directed_graph_test.cc" "tests/CMakeFiles/ringo_graph_test.dir/graph/directed_graph_test.cc.o" "gcc" "tests/CMakeFiles/ringo_graph_test.dir/graph/directed_graph_test.cc.o.d"
  "/root/repo/tests/graph/graph_io_test.cc" "tests/CMakeFiles/ringo_graph_test.dir/graph/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/ringo_graph_test.dir/graph/graph_io_test.cc.o.d"
  "/root/repo/tests/graph/undirected_graph_test.cc" "tests/CMakeFiles/ringo_graph_test.dir/graph/undirected_graph_test.cc.o" "gcc" "tests/CMakeFiles/ringo_graph_test.dir/graph/undirected_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
