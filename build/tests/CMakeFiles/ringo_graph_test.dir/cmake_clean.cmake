file(REMOVE_RECURSE
  "CMakeFiles/ringo_graph_test.dir/graph/csr_graph_test.cc.o"
  "CMakeFiles/ringo_graph_test.dir/graph/csr_graph_test.cc.o.d"
  "CMakeFiles/ringo_graph_test.dir/graph/directed_graph_test.cc.o"
  "CMakeFiles/ringo_graph_test.dir/graph/directed_graph_test.cc.o.d"
  "CMakeFiles/ringo_graph_test.dir/graph/graph_io_test.cc.o"
  "CMakeFiles/ringo_graph_test.dir/graph/graph_io_test.cc.o.d"
  "CMakeFiles/ringo_graph_test.dir/graph/undirected_graph_test.cc.o"
  "CMakeFiles/ringo_graph_test.dir/graph/undirected_graph_test.cc.o.d"
  "ringo_graph_test"
  "ringo_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
