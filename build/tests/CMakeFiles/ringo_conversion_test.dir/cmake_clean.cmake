file(REMOVE_RECURSE
  "CMakeFiles/ringo_conversion_test.dir/core/conversion_test.cc.o"
  "CMakeFiles/ringo_conversion_test.dir/core/conversion_test.cc.o.d"
  "ringo_conversion_test"
  "ringo_conversion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_conversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
