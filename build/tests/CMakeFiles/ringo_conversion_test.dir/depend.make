# Empty dependencies file for ringo_conversion_test.
# This may be replaced when dependencies are built.
