file(REMOVE_RECURSE
  "CMakeFiles/ringo_table_test.dir/table/column_test.cc.o"
  "CMakeFiles/ringo_table_test.dir/table/column_test.cc.o.d"
  "CMakeFiles/ringo_table_test.dir/table/schema_test.cc.o"
  "CMakeFiles/ringo_table_test.dir/table/schema_test.cc.o.d"
  "CMakeFiles/ringo_table_test.dir/table/table_test.cc.o"
  "CMakeFiles/ringo_table_test.dir/table/table_test.cc.o.d"
  "ringo_table_test"
  "ringo_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
