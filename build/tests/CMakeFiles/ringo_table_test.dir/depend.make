# Empty dependencies file for ringo_table_test.
# This may be replaced when dependencies are built.
