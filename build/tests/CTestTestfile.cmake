# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ringo_util_test "/root/repo/build/tests/ringo_util_test")
set_tests_properties(ringo_util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_storage_test "/root/repo/build/tests/ringo_storage_test")
set_tests_properties(ringo_storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_table_test "/root/repo/build/tests/ringo_table_test")
set_tests_properties(ringo_table_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;27;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_table_ops_test "/root/repo/build/tests/ringo_table_ops_test")
set_tests_properties(ringo_table_ops_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;33;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_graph_test "/root/repo/build/tests/ringo_graph_test")
set_tests_properties(ringo_graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;43;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_conversion_test "/root/repo/build/tests/ringo_conversion_test")
set_tests_properties(ringo_conversion_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;50;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_algo_basic_test "/root/repo/build/tests/ringo_algo_basic_test")
set_tests_properties(ringo_algo_basic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;54;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_algo_rank_test "/root/repo/build/tests/ringo_algo_rank_test")
set_tests_properties(ringo_algo_rank_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;64;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_algo_struct_test "/root/repo/build/tests/ringo_algo_struct_test")
set_tests_properties(ringo_algo_struct_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;71;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_gen_test "/root/repo/build/tests/ringo_gen_test")
set_tests_properties(ringo_gen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;84;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_engine_test "/root/repo/build/tests/ringo_engine_test")
set_tests_properties(ringo_engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;89;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ringo_paper_shapes_test "/root/repo/build/tests/ringo_paper_shapes_test")
set_tests_properties(ringo_paper_shapes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;93;ringo_add_test;/root/repo/tests/CMakeLists.txt;0;")
