# Empty compiler generated dependencies file for stackoverflow_experts.
# This may be replaced when dependencies are built.
