file(REMOVE_RECURSE
  "CMakeFiles/stackoverflow_experts.dir/stackoverflow_experts.cpp.o"
  "CMakeFiles/stackoverflow_experts.dir/stackoverflow_experts.cpp.o.d"
  "stackoverflow_experts"
  "stackoverflow_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackoverflow_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
