# Empty dependencies file for ringo_shell.
# This may be replaced when dependencies are built.
