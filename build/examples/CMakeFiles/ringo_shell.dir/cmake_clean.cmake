file(REMOVE_RECURSE
  "CMakeFiles/ringo_shell.dir/ringo_shell.cpp.o"
  "CMakeFiles/ringo_shell.dir/ringo_shell.cpp.o.d"
  "ringo_shell"
  "ringo_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
