# Empty compiler generated dependencies file for cascade_simulation.
# This may be replaced when dependencies are built.
