file(REMOVE_RECURSE
  "CMakeFiles/cascade_simulation.dir/cascade_simulation.cpp.o"
  "CMakeFiles/cascade_simulation.dir/cascade_simulation.cpp.o.d"
  "cascade_simulation"
  "cascade_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
