# Empty compiler generated dependencies file for graph_statistics.
# This may be replaced when dependencies are built.
