file(REMOVE_RECURSE
  "CMakeFiles/graph_statistics.dir/graph_statistics.cpp.o"
  "CMakeFiles/graph_statistics.dir/graph_statistics.cpp.o.d"
  "graph_statistics"
  "graph_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
