# Empty dependencies file for ringo_gen.
# This may be replaced when dependencies are built.
