file(REMOVE_RECURSE
  "CMakeFiles/ringo_gen.dir/gen/graph_gen.cc.o"
  "CMakeFiles/ringo_gen.dir/gen/graph_gen.cc.o.d"
  "CMakeFiles/ringo_gen.dir/gen/stackoverflow_gen.cc.o"
  "CMakeFiles/ringo_gen.dir/gen/stackoverflow_gen.cc.o.d"
  "libringo_gen.a"
  "libringo_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
