file(REMOVE_RECURSE
  "libringo_gen.a"
)
