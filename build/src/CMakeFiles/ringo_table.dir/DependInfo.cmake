
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/column.cc" "src/CMakeFiles/ringo_table.dir/table/column.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/column.cc.o.d"
  "/root/repo/src/table/group_by.cc" "src/CMakeFiles/ringo_table.dir/table/group_by.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/group_by.cc.o.d"
  "/root/repo/src/table/join.cc" "src/CMakeFiles/ringo_table.dir/table/join.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/join.cc.o.d"
  "/root/repo/src/table/next_k.cc" "src/CMakeFiles/ringo_table.dir/table/next_k.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/next_k.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/ringo_table.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/schema.cc.o.d"
  "/root/repo/src/table/set_ops.cc" "src/CMakeFiles/ringo_table.dir/table/set_ops.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/set_ops.cc.o.d"
  "/root/repo/src/table/sim_join.cc" "src/CMakeFiles/ringo_table.dir/table/sim_join.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/sim_join.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/ringo_table.dir/table/table.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_ext.cc" "src/CMakeFiles/ringo_table.dir/table/table_ext.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/table_ext.cc.o.d"
  "/root/repo/src/table/table_io.cc" "src/CMakeFiles/ringo_table.dir/table/table_io.cc.o" "gcc" "src/CMakeFiles/ringo_table.dir/table/table_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
