# Empty dependencies file for ringo_table.
# This may be replaced when dependencies are built.
