file(REMOVE_RECURSE
  "libringo_table.a"
)
