file(REMOVE_RECURSE
  "CMakeFiles/ringo_table.dir/table/column.cc.o"
  "CMakeFiles/ringo_table.dir/table/column.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/group_by.cc.o"
  "CMakeFiles/ringo_table.dir/table/group_by.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/join.cc.o"
  "CMakeFiles/ringo_table.dir/table/join.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/next_k.cc.o"
  "CMakeFiles/ringo_table.dir/table/next_k.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/schema.cc.o"
  "CMakeFiles/ringo_table.dir/table/schema.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/set_ops.cc.o"
  "CMakeFiles/ringo_table.dir/table/set_ops.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/sim_join.cc.o"
  "CMakeFiles/ringo_table.dir/table/sim_join.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/table.cc.o"
  "CMakeFiles/ringo_table.dir/table/table.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/table_ext.cc.o"
  "CMakeFiles/ringo_table.dir/table/table_ext.cc.o.d"
  "CMakeFiles/ringo_table.dir/table/table_io.cc.o"
  "CMakeFiles/ringo_table.dir/table/table_io.cc.o.d"
  "libringo_table.a"
  "libringo_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
