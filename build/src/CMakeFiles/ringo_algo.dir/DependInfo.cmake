
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/anf.cc" "src/CMakeFiles/ringo_algo.dir/algo/anf.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/anf.cc.o.d"
  "/root/repo/src/algo/bfs.cc" "src/CMakeFiles/ringo_algo.dir/algo/bfs.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/bfs.cc.o.d"
  "/root/repo/src/algo/biconnectivity.cc" "src/CMakeFiles/ringo_algo.dir/algo/biconnectivity.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/biconnectivity.cc.o.d"
  "/root/repo/src/algo/cascade.cc" "src/CMakeFiles/ringo_algo.dir/algo/cascade.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/cascade.cc.o.d"
  "/root/repo/src/algo/centrality.cc" "src/CMakeFiles/ringo_algo.dir/algo/centrality.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/centrality.cc.o.d"
  "/root/repo/src/algo/community.cc" "src/CMakeFiles/ringo_algo.dir/algo/community.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/community.cc.o.d"
  "/root/repo/src/algo/connectivity.cc" "src/CMakeFiles/ringo_algo.dir/algo/connectivity.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/connectivity.cc.o.d"
  "/root/repo/src/algo/diameter.cc" "src/CMakeFiles/ringo_algo.dir/algo/diameter.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/diameter.cc.o.d"
  "/root/repo/src/algo/hits.cc" "src/CMakeFiles/ringo_algo.dir/algo/hits.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/hits.cc.o.d"
  "/root/repo/src/algo/kcore.cc" "src/CMakeFiles/ringo_algo.dir/algo/kcore.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/kcore.cc.o.d"
  "/root/repo/src/algo/louvain.cc" "src/CMakeFiles/ringo_algo.dir/algo/louvain.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/louvain.cc.o.d"
  "/root/repo/src/algo/mst.cc" "src/CMakeFiles/ringo_algo.dir/algo/mst.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/mst.cc.o.d"
  "/root/repo/src/algo/pagerank.cc" "src/CMakeFiles/ringo_algo.dir/algo/pagerank.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/pagerank.cc.o.d"
  "/root/repo/src/algo/random_walk.cc" "src/CMakeFiles/ringo_algo.dir/algo/random_walk.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/random_walk.cc.o.d"
  "/root/repo/src/algo/similarity.cc" "src/CMakeFiles/ringo_algo.dir/algo/similarity.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/similarity.cc.o.d"
  "/root/repo/src/algo/sssp.cc" "src/CMakeFiles/ringo_algo.dir/algo/sssp.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/sssp.cc.o.d"
  "/root/repo/src/algo/stats.cc" "src/CMakeFiles/ringo_algo.dir/algo/stats.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/stats.cc.o.d"
  "/root/repo/src/algo/topology.cc" "src/CMakeFiles/ringo_algo.dir/algo/topology.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/topology.cc.o.d"
  "/root/repo/src/algo/transform.cc" "src/CMakeFiles/ringo_algo.dir/algo/transform.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/transform.cc.o.d"
  "/root/repo/src/algo/triad_census.cc" "src/CMakeFiles/ringo_algo.dir/algo/triad_census.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/triad_census.cc.o.d"
  "/root/repo/src/algo/triangles.cc" "src/CMakeFiles/ringo_algo.dir/algo/triangles.cc.o" "gcc" "src/CMakeFiles/ringo_algo.dir/algo/triangles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
