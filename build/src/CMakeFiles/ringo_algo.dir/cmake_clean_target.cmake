file(REMOVE_RECURSE
  "libringo_algo.a"
)
