# Empty compiler generated dependencies file for ringo_algo.
# This may be replaced when dependencies are built.
