file(REMOVE_RECURSE
  "libringo_util.a"
)
