file(REMOVE_RECURSE
  "CMakeFiles/ringo_util.dir/util/logging.cc.o"
  "CMakeFiles/ringo_util.dir/util/logging.cc.o.d"
  "CMakeFiles/ringo_util.dir/util/parallel.cc.o"
  "CMakeFiles/ringo_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/ringo_util.dir/util/status.cc.o"
  "CMakeFiles/ringo_util.dir/util/status.cc.o.d"
  "CMakeFiles/ringo_util.dir/util/string_util.cc.o"
  "CMakeFiles/ringo_util.dir/util/string_util.cc.o.d"
  "libringo_util.a"
  "libringo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
