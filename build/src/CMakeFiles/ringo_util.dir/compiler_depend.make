# Empty compiler generated dependencies file for ringo_util.
# This may be replaced when dependencies are built.
