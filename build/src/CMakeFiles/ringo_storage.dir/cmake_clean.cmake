file(REMOVE_RECURSE
  "CMakeFiles/ringo_storage.dir/storage/string_pool.cc.o"
  "CMakeFiles/ringo_storage.dir/storage/string_pool.cc.o.d"
  "libringo_storage.a"
  "libringo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
