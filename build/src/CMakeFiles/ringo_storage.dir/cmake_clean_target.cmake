file(REMOVE_RECURSE
  "libringo_storage.a"
)
