# Empty compiler generated dependencies file for ringo_storage.
# This may be replaced when dependencies are built.
