file(REMOVE_RECURSE
  "CMakeFiles/ringo_core.dir/core/conversion.cc.o"
  "CMakeFiles/ringo_core.dir/core/conversion.cc.o.d"
  "CMakeFiles/ringo_core.dir/core/engine.cc.o"
  "CMakeFiles/ringo_core.dir/core/engine.cc.o.d"
  "libringo_core.a"
  "libringo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
