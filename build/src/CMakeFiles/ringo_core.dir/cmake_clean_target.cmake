file(REMOVE_RECURSE
  "libringo_core.a"
)
