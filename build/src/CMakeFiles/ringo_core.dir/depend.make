# Empty dependencies file for ringo_core.
# This may be replaced when dependencies are built.
