file(REMOVE_RECURSE
  "libringo_graph.a"
)
