
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/ringo_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/ringo_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/directed_graph.cc" "src/CMakeFiles/ringo_graph.dir/graph/directed_graph.cc.o" "gcc" "src/CMakeFiles/ringo_graph.dir/graph/directed_graph.cc.o.d"
  "/root/repo/src/graph/edge_weights.cc" "src/CMakeFiles/ringo_graph.dir/graph/edge_weights.cc.o" "gcc" "src/CMakeFiles/ringo_graph.dir/graph/edge_weights.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/ringo_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/ringo_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/undirected_graph.cc" "src/CMakeFiles/ringo_graph.dir/graph/undirected_graph.cc.o" "gcc" "src/CMakeFiles/ringo_graph.dir/graph/undirected_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
