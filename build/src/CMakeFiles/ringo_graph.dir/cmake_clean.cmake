file(REMOVE_RECURSE
  "CMakeFiles/ringo_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/ringo_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/ringo_graph.dir/graph/directed_graph.cc.o"
  "CMakeFiles/ringo_graph.dir/graph/directed_graph.cc.o.d"
  "CMakeFiles/ringo_graph.dir/graph/edge_weights.cc.o"
  "CMakeFiles/ringo_graph.dir/graph/edge_weights.cc.o.d"
  "CMakeFiles/ringo_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/ringo_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/ringo_graph.dir/graph/undirected_graph.cc.o"
  "CMakeFiles/ringo_graph.dir/graph/undirected_graph.cc.o.d"
  "libringo_graph.a"
  "libringo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
