# Empty compiler generated dependencies file for ringo_graph.
# This may be replaced when dependencies are built.
