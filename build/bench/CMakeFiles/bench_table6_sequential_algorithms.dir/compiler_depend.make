# Empty compiler generated dependencies file for bench_table6_sequential_algorithms.
# This may be replaced when dependencies are built.
