file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_sequential_algorithms.dir/bench_table6_sequential_algorithms.cc.o"
  "CMakeFiles/bench_table6_sequential_algorithms.dir/bench_table6_sequential_algorithms.cc.o.d"
  "bench_table6_sequential_algorithms"
  "bench_table6_sequential_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sequential_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
