file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_graph_census.dir/bench_table1_graph_census.cc.o"
  "CMakeFiles/bench_table1_graph_census.dir/bench_table1_graph_census.cc.o.d"
  "bench_table1_graph_census"
  "bench_table1_graph_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_graph_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
