# Empty compiler generated dependencies file for bench_ablation_hashtable.
# This may be replaced when dependencies are built.
