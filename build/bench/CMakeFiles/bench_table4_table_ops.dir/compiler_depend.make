# Empty compiler generated dependencies file for bench_table4_table_ops.
# This may be replaced when dependencies are built.
