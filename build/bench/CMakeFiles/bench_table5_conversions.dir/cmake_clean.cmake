file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_conversions.dir/bench_table5_conversions.cc.o"
  "CMakeFiles/bench_table5_conversions.dir/bench_table5_conversions.cc.o.d"
  "bench_table5_conversions"
  "bench_table5_conversions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_conversions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
