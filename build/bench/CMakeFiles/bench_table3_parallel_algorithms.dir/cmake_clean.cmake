file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_parallel_algorithms.dir/bench_table3_parallel_algorithms.cc.o"
  "CMakeFiles/bench_table3_parallel_algorithms.dir/bench_table3_parallel_algorithms.cc.o.d"
  "bench_table3_parallel_algorithms"
  "bench_table3_parallel_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_parallel_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
