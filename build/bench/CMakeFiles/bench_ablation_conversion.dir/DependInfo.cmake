
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_conversion.cc" "bench/CMakeFiles/bench_ablation_conversion.dir/bench_ablation_conversion.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_conversion.dir/bench_ablation_conversion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ringo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ringo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
