# Empty dependencies file for bench_ablation_conversion.
# This may be replaced when dependencies are built.
