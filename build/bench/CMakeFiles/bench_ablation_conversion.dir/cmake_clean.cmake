file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conversion.dir/bench_ablation_conversion.cc.o"
  "CMakeFiles/bench_ablation_conversion.dir/bench_ablation_conversion.cc.o.d"
  "bench_ablation_conversion"
  "bench_ablation_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
